#include "src/data/regression_data.h"

#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace pipemare::data {

using tensor::Tensor;

SynthRegressionDataset::SynthRegressionDataset(const RegressionConfig& cfg) : cfg_(cfg) {
  util::Rng rng(cfg.seed);
  int d = cfg.features, n = cfg.size;
  std::vector<double> scales(static_cast<std::size_t>(d));
  for (int j = 0; j < d; ++j) {
    double frac = d == 1 ? 0.0 : static_cast<double>(j) / (d - 1);
    scales[static_cast<std::size_t>(j)] = std::pow(10.0, -cfg.scale_decades * frac);
  }
  std::vector<double> w_true(static_cast<std::size_t>(d));
  for (auto& w : w_true) w = rng.normal();
  x_.resize(static_cast<std::size_t>(n) * d);
  y_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double dot = 0.0;
    for (int j = 0; j < d; ++j) {
      double v = rng.normal() * scales[static_cast<std::size_t>(j)];
      x_[static_cast<std::size_t>(i) * d + j] = static_cast<float>(v);
      dot += v * w_true[static_cast<std::size_t>(j)];
    }
    y_[static_cast<std::size_t>(i)] = static_cast<float>(dot + rng.normal(0.0, cfg.noise_std));
  }
  // Power iteration on H = (1/n) X^T X.
  std::vector<double> v(static_cast<std::size_t>(d), 1.0);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<double> hv(static_cast<std::size_t>(d), 0.0);
    for (int i = 0; i < n; ++i) {
      double xi_v = 0.0;
      for (int j = 0; j < d; ++j) xi_v += x_[static_cast<std::size_t>(i) * d + j] * v[static_cast<std::size_t>(j)];
      for (int j = 0; j < d; ++j) hv[static_cast<std::size_t>(j)] += x_[static_cast<std::size_t>(i) * d + j] * xi_v;
    }
    double norm = 0.0;
    for (int j = 0; j < d; ++j) {
      hv[static_cast<std::size_t>(j)] /= n;
      norm += hv[static_cast<std::size_t>(j)] * hv[static_cast<std::size_t>(j)];
    }
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    for (int j = 0; j < d; ++j) v[static_cast<std::size_t>(j)] = hv[static_cast<std::size_t>(j)] / norm;
    lambda_max_ = norm;
  }
}

MicroBatches SynthRegressionDataset::minibatch(const std::vector<int>& indices,
                                               int micro_size) const {
  if (micro_size <= 0 || indices.empty() ||
      indices.size() % static_cast<std::size_t>(micro_size) != 0) {
    throw std::invalid_argument("regression minibatch: must split evenly");
  }
  int d = cfg_.features;
  auto n_micro = static_cast<int>(indices.size()) / micro_size;
  MicroBatches out;
  for (int m = 0; m < n_micro; ++m) {
    nn::Flow flow;
    flow.x = Tensor({micro_size, d});
    Tensor target({micro_size});
    for (int j = 0; j < micro_size; ++j) {
      int idx = indices[static_cast<std::size_t>(m * micro_size + j)];
      for (int f = 0; f < d; ++f) {
        flow.x.at(j, f) = x_[static_cast<std::size_t>(idx) * d + f];
      }
      target[j] = y_[static_cast<std::size_t>(idx)];
    }
    out.inputs.push_back(std::move(flow));
    out.targets.push_back(std::move(target));
  }
  return out;
}

}  // namespace pipemare::data
