#pragma once

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace pipemare::data {

/// Synthetic stand-in for CIFAR10 / ImageNet (documented substitution).
///
/// Each class owns a smooth random template (a mixture of low-frequency
/// 2-D sinusoids plus a class-specific channel bias); samples are the
/// template under a random cyclic shift plus Gaussian pixel noise. The
/// task is non-trivially shift-invariant (favoring the convolutional
/// inductive bias) yet learnable within a few epochs, which is what the
/// paper's convergence/divergence comparisons need.
struct ImageDatasetConfig {
  int classes = 10;
  int train_size = 2048;
  int test_size = 512;
  int channels = 3;
  int image_size = 16;
  int max_shift = 3;
  double noise_std = 0.6;
  std::uint64_t seed = 1234;
};

class SynthImageDataset {
 public:
  explicit SynthImageDataset(const ImageDatasetConfig& cfg);

  const ImageDatasetConfig& config() const { return cfg_; }
  int train_size() const { return cfg_.train_size; }
  int test_size() const { return cfg_.test_size; }

  /// Builds the microbatches for the training examples at `indices`
  /// (one minibatch = indices.size() samples, split every `micro_size`).
  MicroBatches train_minibatch(const std::vector<int>& indices, int micro_size) const;

  /// Full test split as one evaluation batch (input flow + labels).
  MicroBatches test_batch(int batch_size) const;

 private:
  void fill_sample(bool train, int index, float* pixels, float* label) const;

  ImageDatasetConfig cfg_;
  std::vector<float> templates_;     ///< [classes, C, H, W]
  std::vector<int> train_labels_;
  std::vector<int> test_labels_;
  std::vector<std::uint64_t> train_noise_seed_;
  std::vector<std::uint64_t> test_noise_seed_;
};

}  // namespace pipemare::data
