#include "src/data/translation_data.h"

#include <algorithm>
#include <stdexcept>

namespace pipemare::data {

using tensor::Tensor;

SynthTranslationDataset::SynthTranslationDataset(const TranslationConfig& cfg) : cfg_(cfg) {
  if (cfg.vocab <= TranslationConfig::kFirstContent + 1) {
    throw std::invalid_argument("translation: vocab too small");
  }
  util::Rng rng(cfg.seed);
  int content = cfg.vocab - TranslationConfig::kFirstContent;
  std::vector<int> perm(static_cast<std::size_t>(content));
  for (int i = 0; i < content; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
  permutation_ = std::move(perm);
  train_seeds_.resize(static_cast<std::size_t>(cfg.train_size));
  test_seeds_.resize(static_cast<std::size_t>(cfg.test_size));
  for (auto& s : train_seeds_) {
    s = (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
  for (auto& s : test_seeds_) {
    s = (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
}

std::vector<int> SynthTranslationDataset::sample_source(bool train, int index) const {
  std::uint64_t seed = train ? train_seeds_.at(static_cast<std::size_t>(index))
                             : test_seeds_.at(static_cast<std::size_t>(index));
  util::Rng rng(seed);
  int content = cfg_.vocab - TranslationConfig::kFirstContent;
  std::vector<int> src(static_cast<std::size_t>(cfg_.seq_len));
  for (auto& t : src) t = TranslationConfig::kFirstContent + rng.randint(content);
  return src;
}

std::vector<int> SynthTranslationDataset::reference(const std::vector<int>& src) const {
  std::vector<int> out(src.rbegin(), src.rend());
  for (auto& t : out) {
    int content_idx = t - TranslationConfig::kFirstContent;
    t = TranslationConfig::kFirstContent +
        permutation_.at(static_cast<std::size_t>(content_idx));
  }
  return out;
}

MicroBatches SynthTranslationDataset::train_minibatch(const std::vector<int>& indices,
                                                      int micro_size) const {
  if (micro_size <= 0 || indices.empty() ||
      indices.size() % static_cast<std::size_t>(micro_size) != 0) {
    throw std::invalid_argument("train_minibatch: minibatch must split evenly");
  }
  int s = cfg_.seq_len;
  auto n_micro = static_cast<int>(indices.size()) / micro_size;
  MicroBatches out;
  for (int m = 0; m < n_micro; ++m) {
    nn::Flow flow;
    flow.x = Tensor({micro_size, s});
    flow.aux = Tensor({micro_size, s + 1});
    Tensor target({micro_size, s + 1});
    for (int j = 0; j < micro_size; ++j) {
      int idx = indices[static_cast<std::size_t>(m * micro_size + j)];
      std::vector<int> src = sample_source(true, idx);
      std::vector<int> ref = reference(src);
      for (int t = 0; t < s; ++t) flow.x.at(j, t) = static_cast<float>(src[static_cast<std::size_t>(t)]);
      flow.aux.at(j, 0) = TranslationConfig::kBos;
      for (int t = 0; t < s; ++t) {
        flow.aux.at(j, t + 1) = static_cast<float>(ref[static_cast<std::size_t>(t)]);
        target.at(j, t) = static_cast<float>(ref[static_cast<std::size_t>(t)]);
      }
      target.at(j, s) = TranslationConfig::kEos;
    }
    out.inputs.push_back(std::move(flow));
    out.targets.push_back(std::move(target));
  }
  return out;
}

SynthTranslationDataset::TestSet SynthTranslationDataset::test_set(int limit) const {
  int n = limit < 0 ? cfg_.test_size : std::min(limit, cfg_.test_size);
  TestSet set;
  set.sources = Tensor({n, cfg_.seq_len});
  for (int i = 0; i < n; ++i) {
    std::vector<int> src = sample_source(false, i);
    for (int t = 0; t < cfg_.seq_len; ++t) {
      set.sources.at(i, t) = static_cast<float>(src[static_cast<std::size_t>(t)]);
    }
    set.references.push_back(reference(src));
  }
  return set;
}

MicroBatches SynthTranslationDataset::test_batch(int batch_size) const {
  int s = cfg_.seq_len;
  MicroBatches out;
  for (int start = 0; start < cfg_.test_size; start += batch_size) {
    int b = std::min(batch_size, cfg_.test_size - start);
    nn::Flow flow;
    flow.x = Tensor({b, s});
    flow.aux = Tensor({b, s + 1});
    Tensor target({b, s + 1});
    for (int j = 0; j < b; ++j) {
      std::vector<int> src = sample_source(false, start + j);
      std::vector<int> ref = reference(src);
      for (int t = 0; t < s; ++t) flow.x.at(j, t) = static_cast<float>(src[static_cast<std::size_t>(t)]);
      flow.aux.at(j, 0) = TranslationConfig::kBos;
      for (int t = 0; t < s; ++t) {
        flow.aux.at(j, t + 1) = static_cast<float>(ref[static_cast<std::size_t>(t)]);
        target.at(j, t) = static_cast<float>(ref[static_cast<std::size_t>(t)]);
      }
      target.at(j, s) = TranslationConfig::kEos;
    }
    out.inputs.push_back(std::move(flow));
    out.targets.push_back(std::move(target));
  }
  return out;
}

}  // namespace pipemare::data
