#pragma once

#include <vector>

namespace pipemare::data {

/// Corpus-level BLEU (Papineni et al.): geometric mean of clipped n-gram
/// precisions for n = 1..max_n, times the brevity penalty, scaled to
/// [0, 100]. This is the metric the paper reports for IWSLT14/WMT17
/// (beam width 5 at decode time).
///
/// Returns 0 when any n-gram precision is zero (standard, unsmoothed
/// corpus BLEU).
double corpus_bleu(const std::vector<std::vector<int>>& hypotheses,
                   const std::vector<std::vector<int>>& references, int max_n = 4);

/// Sentence-level token accuracy (fraction of positions matching the
/// reference, truncated to the shorter sequence, penalizing length
/// mismatch) — the quick teacher-forcing-free metric used in smoke tests.
double sequence_accuracy(const std::vector<std::vector<int>>& hypotheses,
                         const std::vector<std::vector<int>>& references);

}  // namespace pipemare::data
