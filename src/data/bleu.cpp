#include "src/data/bleu.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace pipemare::data {

namespace {

using NGram = std::vector<int>;

std::map<NGram, int> ngram_counts(const std::vector<int>& tokens, int n) {
  std::map<NGram, int> counts;
  if (static_cast<int>(tokens.size()) < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    NGram g(tokens.begin() + static_cast<std::ptrdiff_t>(i),
            tokens.begin() + static_cast<std::ptrdiff_t>(i) + n);
    ++counts[g];
  }
  return counts;
}

}  // namespace

double corpus_bleu(const std::vector<std::vector<int>>& hypotheses,
                   const std::vector<std::vector<int>>& references, int max_n) {
  if (hypotheses.size() != references.size()) {
    throw std::invalid_argument("corpus_bleu: size mismatch");
  }
  if (hypotheses.empty()) return 0.0;
  std::size_t hyp_len = 0, ref_len = 0;
  std::vector<std::int64_t> matched(static_cast<std::size_t>(max_n), 0);
  std::vector<std::int64_t> total(static_cast<std::size_t>(max_n), 0);
  for (std::size_t s = 0; s < hypotheses.size(); ++s) {
    hyp_len += hypotheses[s].size();
    ref_len += references[s].size();
    for (int n = 1; n <= max_n; ++n) {
      auto hyp_counts = ngram_counts(hypotheses[s], n);
      auto ref_counts = ngram_counts(references[s], n);
      for (const auto& [gram, count] : hyp_counts) {
        auto it = ref_counts.find(gram);
        int clip = it == ref_counts.end() ? 0 : std::min(count, it->second);
        matched[static_cast<std::size_t>(n - 1)] += clip;
        total[static_cast<std::size_t>(n - 1)] += count;
      }
    }
  }
  double log_precision = 0.0;
  for (int n = 0; n < max_n; ++n) {
    if (total[static_cast<std::size_t>(n)] == 0 ||
        matched[static_cast<std::size_t>(n)] == 0) {
      return 0.0;
    }
    log_precision += std::log(static_cast<double>(matched[static_cast<std::size_t>(n)]) /
                              static_cast<double>(total[static_cast<std::size_t>(n)]));
  }
  log_precision /= max_n;
  double bp = 1.0;
  if (hyp_len < ref_len && hyp_len > 0) {
    bp = std::exp(1.0 - static_cast<double>(ref_len) / static_cast<double>(hyp_len));
  }
  if (hyp_len == 0) return 0.0;
  return 100.0 * bp * std::exp(log_precision);
}

double sequence_accuracy(const std::vector<std::vector<int>>& hypotheses,
                         const std::vector<std::vector<int>>& references) {
  if (hypotheses.size() != references.size()) {
    throw std::invalid_argument("sequence_accuracy: size mismatch");
  }
  double correct = 0.0, count = 0.0;
  for (std::size_t s = 0; s < hypotheses.size(); ++s) {
    std::size_t len = std::max(hypotheses[s].size(), references[s].size());
    std::size_t common = std::min(hypotheses[s].size(), references[s].size());
    for (std::size_t i = 0; i < common; ++i) {
      if (hypotheses[s][i] == references[s][i]) correct += 1.0;
    }
    count += static_cast<double>(len);
  }
  return count == 0.0 ? 0.0 : correct / count;
}

}  // namespace pipemare::data
