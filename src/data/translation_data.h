#pragma once

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace pipemare::data {

/// Synthetic stand-in for IWSLT14 / WMT17 translation (documented
/// substitution): the source is a random token sequence and the reference
/// translation is the *reversed* sequence mapped through a fixed random
/// vocabulary permutation. The task requires genuine sequence-to-sequence
/// modeling (position reversal + token mapping) while being learnable by a
/// small encoder-decoder Transformer within a few epochs.
///
/// Token conventions: 0 = PAD (unused; sequences are fixed-length),
/// 1 = BOS, 2 = EOS, content tokens in [3, vocab).
struct TranslationConfig {
  int vocab = 32;
  int seq_len = 8;
  int train_size = 1024;
  int test_size = 128;
  std::uint64_t seed = 99;

  static constexpr int kPad = 0;
  static constexpr int kBos = 1;
  static constexpr int kEos = 2;
  static constexpr int kFirstContent = 3;
};

class SynthTranslationDataset {
 public:
  explicit SynthTranslationDataset(const TranslationConfig& cfg);

  const TranslationConfig& config() const { return cfg_; }
  int train_size() const { return cfg_.train_size; }
  int test_size() const { return cfg_.test_size; }

  /// Reference translation of a source sequence (mapped reversal, no
  /// BOS/EOS).
  std::vector<int> reference(const std::vector<int>& src) const;

  /// Minibatch for training: Flow.x = src [B,S]; Flow.aux = BOS-shifted
  /// target input [B,S+1]; target tensor = reference + EOS [B,S+1].
  MicroBatches train_minibatch(const std::vector<int>& indices, int micro_size) const;

  /// Test sources [B, S] and their references, for decode + BLEU.
  struct TestSet {
    tensor::Tensor sources;                    ///< [test_size, S]
    std::vector<std::vector<int>> references;  ///< content tokens only
  };
  TestSet test_set(int limit = -1) const;

  /// Token-accuracy evaluation batch (teacher-forced), same layout as
  /// train_minibatch.
  MicroBatches test_batch(int batch_size) const;

 private:
  std::vector<int> sample_source(bool train, int index) const;

  TranslationConfig cfg_;
  std::vector<int> permutation_;  ///< content-token mapping
  std::vector<std::uint64_t> train_seeds_;
  std::vector<std::uint64_t> test_seeds_;
};

}  // namespace pipemare::data
