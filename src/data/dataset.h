#pragma once

#include <vector>

#include "src/nn/flow.h"

namespace pipemare::data {

/// One minibatch split into the N microbatches the pipeline engine
/// consumes (Section 2.1: "each pipeline stage processes M samples at a
/// time ... N = B/M microbatches per minibatch").
struct MicroBatches {
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
};

}  // namespace pipemare::data
