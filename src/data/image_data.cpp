#include "src/data/image_data.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pipemare::data {

using tensor::Tensor;

SynthImageDataset::SynthImageDataset(const ImageDatasetConfig& cfg) : cfg_(cfg) {
  util::Rng rng(cfg.seed);
  int c = cfg.channels, hw = cfg.image_size;
  templates_.assign(static_cast<std::size_t>(cfg.classes) * c * hw * hw, 0.0F);
  // Each class template: 3 random low-frequency sinusoids per channel plus
  // a class/channel bias; values kept O(1).
  for (int k = 0; k < cfg.classes; ++k) {
    for (int ch = 0; ch < c; ++ch) {
      double bias = rng.uniform(-0.5, 0.5);
      double fx[3], fy[3], phase[3], amp[3];
      for (int w = 0; w < 3; ++w) {
        fx[w] = rng.randint(3) + 1;
        fy[w] = rng.randint(3) + 1;
        phase[w] = rng.uniform(0.0, 2.0 * std::numbers::pi);
        amp[w] = rng.uniform(0.3, 0.8);
      }
      for (int y = 0; y < hw; ++y) {
        for (int x = 0; x < hw; ++x) {
          double v = bias;
          for (int w = 0; w < 3; ++w) {
            v += amp[w] * std::sin(2.0 * std::numbers::pi *
                                       (fx[w] * x + fy[w] * y) / hw +
                                   phase[w]);
          }
          templates_[((static_cast<std::size_t>(k) * c + ch) * hw + y) * hw + x] =
              static_cast<float>(v);
        }
      }
    }
  }
  train_labels_.resize(static_cast<std::size_t>(cfg.train_size));
  test_labels_.resize(static_cast<std::size_t>(cfg.test_size));
  train_noise_seed_.resize(static_cast<std::size_t>(cfg.train_size));
  test_noise_seed_.resize(static_cast<std::size_t>(cfg.test_size));
  for (int i = 0; i < cfg.train_size; ++i) {
    train_labels_[static_cast<std::size_t>(i)] = rng.randint(cfg.classes);
    train_noise_seed_[static_cast<std::size_t>(i)] =
        (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
  for (int i = 0; i < cfg.test_size; ++i) {
    test_labels_[static_cast<std::size_t>(i)] = rng.randint(cfg.classes);
    test_noise_seed_[static_cast<std::size_t>(i)] =
        (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
}

void SynthImageDataset::fill_sample(bool train, int index, float* pixels,
                                    float* label) const {
  int c = cfg_.channels, hw = cfg_.image_size;
  int y_label = train ? train_labels_.at(static_cast<std::size_t>(index))
                      : test_labels_.at(static_cast<std::size_t>(index));
  std::uint64_t seed = train ? train_noise_seed_[static_cast<std::size_t>(index)]
                             : test_noise_seed_[static_cast<std::size_t>(index)];
  util::Rng rng(seed);
  int shift = cfg_.max_shift;
  int dy = shift > 0 ? rng.randint(2 * shift + 1) - shift : 0;
  int dx = shift > 0 ? rng.randint(2 * shift + 1) - shift : 0;
  const float* tpl =
      templates_.data() + static_cast<std::size_t>(y_label) * c * hw * hw;
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < hw; ++y) {
      for (int x = 0; x < hw; ++x) {
        int sy = ((y + dy) % hw + hw) % hw;
        int sx = ((x + dx) % hw + hw) % hw;
        float v = tpl[(static_cast<std::size_t>(ch) * hw + sy) * hw + sx];
        v += static_cast<float>(rng.normal(0.0, cfg_.noise_std));
        pixels[(static_cast<std::size_t>(ch) * hw + y) * hw + x] = v;
      }
    }
  }
  *label = static_cast<float>(y_label);
}

MicroBatches SynthImageDataset::train_minibatch(const std::vector<int>& indices,
                                                int micro_size) const {
  if (micro_size <= 0 || indices.empty() ||
      indices.size() % static_cast<std::size_t>(micro_size) != 0) {
    throw std::invalid_argument("train_minibatch: minibatch must split evenly");
  }
  int c = cfg_.channels, hw = cfg_.image_size;
  auto n_micro = static_cast<int>(indices.size()) / micro_size;
  MicroBatches out;
  for (int m = 0; m < n_micro; ++m) {
    nn::Flow flow;
    flow.x = Tensor({micro_size, c, hw, hw});
    Tensor labels({micro_size});
    for (int j = 0; j < micro_size; ++j) {
      int idx = indices[static_cast<std::size_t>(m * micro_size + j)];
      fill_sample(true, idx, flow.x.data() + static_cast<std::size_t>(j) * c * hw * hw,
                  labels.data() + j);
    }
    out.inputs.push_back(std::move(flow));
    out.targets.push_back(std::move(labels));
  }
  return out;
}

MicroBatches SynthImageDataset::test_batch(int batch_size) const {
  int c = cfg_.channels, hw = cfg_.image_size;
  int total = cfg_.test_size;
  MicroBatches out;
  for (int start = 0; start < total; start += batch_size) {
    int b = std::min(batch_size, total - start);
    nn::Flow flow;
    flow.x = Tensor({b, c, hw, hw});
    Tensor labels({b});
    for (int j = 0; j < b; ++j) {
      fill_sample(false, start + j,
                  flow.x.data() + static_cast<std::size_t>(j) * c * hw * hw,
                  labels.data() + j);
    }
    out.inputs.push_back(std::move(flow));
    out.targets.push_back(std::move(labels));
  }
  return out;
}

}  // namespace pipemare::data
