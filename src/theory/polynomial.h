#pragma once

#include <complex>
#include <vector>

namespace pipemare::theory {

using Complex = std::complex<double>;

/// Real-coefficient polynomial a_0 + a_1 x + ... + a_d x^d.
///
/// Used to analyze the characteristic polynomials of the companion matrices
/// arising from fixed-delay asynchronous SGD on the quadratic model
/// (Section 3 and Appendices B/D of the paper). Stability of the linear
/// recurrence is equivalent to all roots lying inside the unit disk.
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> ascending_coeffs);

  /// Degree after trimming (negligible) leading zeros; -1 for the zero poly.
  int degree() const;

  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Adds c * x^power (growing the coefficient vector as needed).
  void add_term(int power, double c);

  Complex eval(Complex x) const;

  Polynomial derivative() const;

  /// All complex roots via the Durand-Kerner (Weierstrass) iteration.
  /// Suitable for the moderate degrees (<= a few hundred) used here.
  std::vector<Complex> roots(int max_iters = 2000, double tol = 1e-12) const;

  /// Maximum root magnitude (spectral radius of the companion matrix).
  double spectral_radius() const;

  /// True iff every root lies strictly inside the unit disk.
  ///
  /// Implemented with the Schur-Cohn (Jury) recursion: p is Schur-stable
  /// iff |a_0| < |a_d| and the degree-reduced transform
  /// (a_d p(z) - a_0 p*(z)) / z is Schur-stable, where p* has reversed
  /// coefficients. This is robust even when roots sit arbitrarily close to
  /// the unit circle (e.g. eq. (4) at step sizes near zero), where
  /// sampling- or iteration-based methods lose resolution. Marginal roots
  /// (on the circle) count as unstable.
  bool is_stable() const;

  /// Winding-number (argument principle) stability check, kept as an
  /// independent cross-validation of `is_stable` for roots comfortably
  /// away from the unit circle. Counts roots inside the circle by the
  /// winding number of p(e^{i t}) around 0.
  bool is_stable_winding(int samples_per_degree = 64) const;

 private:
  std::vector<double> coeffs_;
};

}  // namespace pipemare::theory
