#pragma once

#include <functional>

#include "src/theory/polynomial.h"

namespace pipemare::theory {

/// Closed-form stability bounds from the paper's lemmas, plus numeric
/// search utilities used to reproduce Figures 3(b), 5(b), 8 and 16.

/// Lemma 1: plain delayed SGD on the quadratic is stable iff
/// 0 <= alpha <= (2/lambda) sin(pi / (4 tau + 2)) = O(1/(lambda tau)).
double lemma1_max_alpha(double lambda, int tau);

/// Lemma 1, second claim: the unique alpha producing a double root,
/// alpha = 1/(lambda (tau+1)) * (tau/(tau+1))^tau.
double lemma1_double_root_alpha(double lambda, int tau);

/// Lemma 2: with discrepancy sensitivity delta > 0 there exists an unstable
/// alpha no larger than
/// min( 2 / (delta (tau_fwd - tau_bkwd)), (2/lambda) sin(pi/(4 tau_fwd+2)) ).
double lemma2_bound(double lambda, double delta, int tau_fwd, int tau_bkwd);

/// Lemma 3: with momentum beta in (0,1] there exists an unstable alpha no
/// larger than (4/lambda) sin(pi / (4 tau + 2)).
double lemma3_bound(double lambda, int tau);

/// Section 3.2: gamma that cancels the Delta-dependence of the second-order
/// Taylor expansion of the T2-corrected characteristic polynomial at w = 1:
/// gamma* = 1 - 2 / (tau_fwd - tau_bkwd + 1).
double gamma_star(int tau_fwd, int tau_bkwd);

/// The corresponding decay hyperparameter D = gamma^{tau_fwd - tau_bkwd},
/// which tends to exp(-2) ~= 0.135 for large delays.
double d_star(int tau_fwd, int tau_bkwd);

/// Converts the global decay hyperparameter D into the per-stage EMA decay
/// gamma_i = D^{1 / (tau_fwd,i - tau_bkwd,i)} (Technique 2).
double gamma_from_decay(double decay_d, double delay_gap);

/// Builds the characteristic polynomial for a given step size.
using PolyFamily = std::function<Polynomial(double alpha)>;

/// Largest alpha for which the family is stable, found by geometric growth
/// followed by bisection of the first stability-to-instability crossing.
/// Returns 0 if even `alpha_min` is unstable.
double largest_stable_alpha(const PolyFamily& family, double alpha_min = 1e-9,
                            double alpha_max = 1e3, int bisect_iters = 60);

}  // namespace pipemare::theory
