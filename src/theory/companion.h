#pragma once

#include <vector>

#include "src/theory/polynomial.h"

namespace pipemare::theory {

/// Dense companion matrix of a monic polynomial, plus eigenvalue utilities.
///
/// The paper's stability arguments (eq. 3) are phrased in terms of the
/// companion matrix C of the delayed-SGD recurrence; this module provides
/// the matrix route explicitly, cross-validating the polynomial route
/// (Durand-Kerner roots / Schur-Cohn) used elsewhere:
///   spectral radius of C == max |root| of the characteristic polynomial.
class CompanionMatrix {
 public:
  /// Builds the companion matrix of p (must have degree >= 1). The matrix
  /// is (d x d) with the recurrence coefficients in the first row.
  explicit CompanionMatrix(const Polynomial& p);

  int dim() const { return dim_; }

  /// y = C x.
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Spectral radius estimated by power iteration on the *real* 2x-lifted
  /// system (handles complex-conjugate dominant pairs by tracking the
  /// growth rate of ||C^k x|| over a window).
  double spectral_radius_power(int iterations = 2000) const;

  /// Simulates w_{t+1} = C w_t + noise e_1 for `steps` steps from a unit
  /// state and reports the final state norm — the matrix-level analog of
  /// the scalar quadratic simulator.
  double simulate_norm(int steps, double noise_std, std::uint64_t seed) const;

 private:
  int dim_;
  std::vector<double> top_row_;  ///< -a_{d-1}/a_d ... -a_0/a_d
};

}  // namespace pipemare::theory
