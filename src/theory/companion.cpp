#include "src/theory/companion.h"

#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace pipemare::theory {

CompanionMatrix::CompanionMatrix(const Polynomial& p) {
  int d = p.degree();
  if (d < 1) throw std::invalid_argument("CompanionMatrix: degree >= 1 required");
  dim_ = d;
  top_row_.resize(static_cast<std::size_t>(d));
  double lead = p.coeffs()[static_cast<std::size_t>(d)];
  // p(x) = x^d + c_{d-1} x^{d-1} + ... + c_0  (after normalization);
  // companion recurrence: x_{t+1} = -c_{d-1} x_t - ... - c_0 x_{t-d+1}.
  for (int i = 0; i < d; ++i) {
    top_row_[static_cast<std::size_t>(i)] =
        -p.coeffs()[static_cast<std::size_t>(d - 1 - i)] / lead;
  }
}

std::vector<double> CompanionMatrix::apply(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != dim_) {
    throw std::invalid_argument("CompanionMatrix::apply: dimension mismatch");
  }
  std::vector<double> y(static_cast<std::size_t>(dim_), 0.0);
  double head = 0.0;
  for (int i = 0; i < dim_; ++i) {
    head += top_row_[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
  }
  y[0] = head;
  for (int i = 1; i < dim_; ++i) y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i - 1)];
  return y;
}

double CompanionMatrix::spectral_radius_power(int iterations) const {
  // Growth-rate estimation: rho = lim ||C^k x||^{1/k}. Renormalize every
  // step and accumulate log growth; robust to complex dominant pairs
  // (where plain power iteration oscillates) because the *norm* growth
  // still converges to rho.
  std::vector<double> x(static_cast<std::size_t>(dim_), 1.0);
  double log_growth = 0.0;
  int counted = 0;
  for (int k = 0; k < iterations; ++k) {
    x = apply(x);
    double norm = 0.0;
    for (double v : x) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    for (double& v : x) v /= norm;
    // Discard the transient half; average the log growth of the rest.
    if (k >= iterations / 2) {
      log_growth += std::log(norm);
      ++counted;
    }
  }
  return counted > 0 ? std::exp(log_growth / counted) : 0.0;
}

double CompanionMatrix::simulate_norm(int steps, double noise_std,
                                      std::uint64_t seed) const {
  util::Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(dim_), 1.0);
  for (int t = 0; t < steps; ++t) {
    x = apply(x);
    x[0] += rng.normal(0.0, noise_std);
    for (double& v : x) {
      if (!std::isfinite(v) || std::abs(v) > 1e12) v = std::copysign(1e12, v);
    }
  }
  double norm = 0.0;
  for (double v : x) norm += v * v;
  return std::sqrt(norm);
}

}  // namespace pipemare::theory
