#pragma once

#include "src/theory/polynomial.h"

namespace pipemare::theory {

/// Characteristic polynomials of the companion matrices for fixed-delay
/// asynchronous SGD on the quadratic objective f(w) = (lambda/2) w^2.
/// Stability of the corresponding linear system is equivalent to all roots
/// lying inside the unit disk (Section 3 of the paper).

/// Eq. (4): p(w) = w^{tau+1} - w^tau + alpha*lambda.
/// Plain delayed SGD with a single delay tau = tau_fwd = tau_bkwd.
Polynomial char_poly_basic(int tau, double alpha, double lambda);

/// Eq. (6): p(w) = w^{tau_f} (w - 1) - alpha*delta*w^{tau_f - tau_b}
///                 + alpha*(lambda + delta).
/// Forward/backward delay discrepancy with sensitivity `delta`.
Polynomial char_poly_discrepancy(int tau_fwd, int tau_bkwd, double alpha,
                                 double lambda, double delta);

/// Eq. (13)/(14): p(w) = w^{tau+1} - (1 + beta) w^tau + beta w^{tau-1}
///                       + alpha*lambda.
/// Delayed SGD with heavy-ball momentum beta. Requires tau >= 1.
Polynomial char_poly_momentum(int tau, double beta, double alpha, double lambda);

/// Appendix B.5: T2 discrepancy-corrected system with EMA decay gamma:
/// p(w) = (w-1)(w-gamma) w^{tau_f}
///        + alpha (lambda + delta) (w - gamma)
///        - alpha delta w^{tau_f - tau_b} (w - gamma)
///        + alpha delta w^{tau_f - tau_b} (tau_f - tau_b)(1 - gamma)(w - 1).
Polynomial char_poly_t2(int tau_fwd, int tau_bkwd, double alpha, double lambda,
                        double delta, double gamma);

/// Appendix D: T2-corrected system with activation recompute. `phi` measures
/// gradient sensitivity to the recompute-vs-backward weight discrepancy:
/// p(w) = (w-1)(w-gamma) w^{tau_f}
///        + alpha (lambda + delta) (w - gamma)
///        - alpha (delta - phi) w^{tau_f - tau_b} (w - gamma)
///        + alpha (delta - phi) w^{tau_f - tau_b} (tau_f - tau_b)(1-gamma)(w-1)
///        - alpha phi w^{tau_f - tau_r} (w - gamma)
///        + alpha phi w^{tau_f - tau_r} (tau_f - tau_r)(1-gamma)(w-1).
Polynomial char_poly_recompute(int tau_fwd, int tau_bkwd, int tau_recomp,
                               double alpha, double lambda, double delta,
                               double phi, double gamma);

/// Appendix D variant *without* the T2 correction (gamma buffers absent):
/// gradient uses raw delayed weights for fwd/bkwd/recompute. Obtained from
/// the three-delay linear model directly:
/// p(w) = w^{tau_f}(w-1) + alpha(lambda+delta)
///        - alpha (delta - phi) w^{tau_f - tau_b} - alpha phi w^{tau_f - tau_r}.
Polynomial char_poly_recompute_uncorrected(int tau_fwd, int tau_bkwd,
                                           int tau_recomp, double alpha,
                                           double lambda, double delta,
                                           double phi);

}  // namespace pipemare::theory
