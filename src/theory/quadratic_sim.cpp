#include "src/theory/quadratic_sim.h"

#include <cmath>
#include <stdexcept>

#include "src/theory/stability.h"

namespace pipemare::theory {

QuadraticSimResult run_quadratic_sim(const QuadraticSimConfig& cfg, int steps) {
  if (cfg.tau_fwd < cfg.tau_bkwd || cfg.tau_bkwd < 0) {
    throw std::invalid_argument("quadratic sim: tau_fwd >= tau_bkwd >= 0 required");
  }
  if (cfg.tau_recomp >= 0 &&
      (cfg.tau_recomp > cfg.tau_fwd || cfg.tau_recomp < cfg.tau_bkwd)) {
    throw std::invalid_argument(
        "quadratic sim: tau_bkwd <= tau_recomp <= tau_fwd required");
  }
  util::Rng rng(cfg.seed);

  // History ring buffer w_{t}, w_{t-1}, ..., long enough for the largest delay.
  int hist = cfg.tau_fwd + 2;
  std::vector<double> w(static_cast<std::size_t>(hist), cfg.w0);
  auto wat = [&](int t, int delay) -> double {
    int idx = (t - delay) % hist;
    if (idx < 0) idx += hist;
    return w[static_cast<std::size_t>(idx)];
  };

  double gap_b = static_cast<double>(cfg.tau_fwd - cfg.tau_bkwd);
  double gamma = cfg.t2_correction ? gamma_from_decay(cfg.decay_d, gap_b) : 0.0;
  double ema_delta = 0.0;  // EMA of per-step weight changes (the T2 buffer)
  double velocity = 0.0;   // heavy-ball momentum state
  double prev_w = cfg.w0;

  QuadraticSimResult result;
  result.losses.reserve(static_cast<std::size_t>(steps));
  for (int t = 0; t < steps; ++t) {
    double w_fwd = wat(t, cfg.tau_fwd);
    double u_bkwd = wat(t, cfg.tau_bkwd);
    if (cfg.t2_correction) {
      u_bkwd -= gap_b * ema_delta;
    }
    double grad;
    if (cfg.tau_recomp >= 0) {
      double u_rec = wat(t, cfg.tau_recomp);
      if (cfg.t2_correction) {
        u_rec -= static_cast<double>(cfg.tau_fwd - cfg.tau_recomp) * ema_delta;
      }
      grad = (cfg.lambda + cfg.delta) * w_fwd - (cfg.delta - cfg.phi) * u_bkwd -
             cfg.phi * u_rec;
    } else {
      grad = (cfg.lambda + cfg.delta) * w_fwd - cfg.delta * u_bkwd;
    }
    grad -= rng.normal(0.0, cfg.noise_std);

    double cur = wat(t, 0);
    double next;
    if (cfg.momentum > 0.0) {
      velocity = cfg.momentum * velocity - cfg.alpha * grad;
      next = cur + velocity;
    } else {
      next = cur - cfg.alpha * grad;
    }
    if (!std::isfinite(next) || std::abs(next) > cfg.divergence_limit) {
      result.diverged = true;
      next = std::isfinite(next)
                 ? std::copysign(cfg.divergence_limit, next)
                 : cfg.divergence_limit;
    }
    if (cfg.t2_correction) {
      ema_delta = gamma * ema_delta + (1.0 - gamma) * (next - prev_w);
    }
    prev_w = next;
    w[static_cast<std::size_t>((t + 1) % hist)] = next;
    double loss = 0.5 * cfg.lambda * next * next;
    if (!std::isfinite(loss) || loss > cfg.divergence_limit) {
      loss = cfg.divergence_limit;
      result.diverged = true;
    }
    result.losses.push_back(loss);
  }
  result.final_loss = result.losses.empty() ? 0.0 : result.losses.back();
  return result;
}

}  // namespace pipemare::theory
