#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace pipemare::theory {

/// Configuration for simulating fixed-delay asynchronous SGD on the
/// one-dimensional quadratic f(w) = (lambda/2) w^2 with gradient samples
///
///   grad_t = (lambda + delta) w_{t - tau_fwd}
///            - (delta - phi) u_bkwd,t - phi u_recomp,t - eta_t
///
/// where eta_t ~ N(0, noise_std^2). With phi = 0 this is the Section 3.2
/// model; with delta = phi = 0 it reduces to eq. (2); tau_recomp < 0
/// disables the recompute path (Appendix D).
struct QuadraticSimConfig {
  double lambda = 1.0;
  double alpha = 0.2;
  int tau_fwd = 0;
  int tau_bkwd = 0;
  int tau_recomp = -1;  ///< < 0 disables the recompute delay path
  double delta = 0.0;   ///< discrepancy sensitivity (Section 3.2)
  double phi = 0.0;     ///< recompute sensitivity (Appendix D)
  double noise_std = 1.0;
  double w0 = 2.0;
  double momentum = 0.0;  ///< heavy-ball beta (Appendix B.3)

  /// Technique 2: replace u_bkwd by w_{t - tau_bkwd} - (tau_fwd - tau_bkwd) delta_t
  /// (and analogously for u_recomp) where delta_t is an EMA of weight deltas.
  bool t2_correction = false;
  double decay_d = 0.135;  ///< D; gamma = D^{1/(tau_fwd - tau_bkwd)}

  std::uint64_t seed = 1;
  double divergence_limit = 1e9;  ///< losses are clipped at this value
};

/// Result of a quadratic-model run.
struct QuadraticSimResult {
  std::vector<double> losses;  ///< (lambda/2) w_t^2 per iteration
  bool diverged = false;
  double final_loss = 0.0;
};

/// Runs the recurrence for `steps` iterations. Reproduces Figures 3(a) and
/// 5(a) of the paper with the paper's parameters, and supplies the empirical
/// grid for Figure 3(b).
QuadraticSimResult run_quadratic_sim(const QuadraticSimConfig& cfg, int steps);

}  // namespace pipemare::theory
