#include "src/theory/char_polys.h"

#include <stdexcept>

namespace pipemare::theory {

namespace {
void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}
}  // namespace

Polynomial char_poly_basic(int tau, double alpha, double lambda) {
  require(tau >= 0, "char_poly_basic: tau >= 0 required");
  Polynomial p;
  p.add_term(tau + 1, 1.0);
  p.add_term(tau, -1.0);
  p.add_term(0, alpha * lambda);
  return p;
}

Polynomial char_poly_discrepancy(int tau_fwd, int tau_bkwd, double alpha,
                                 double lambda, double delta) {
  require(tau_fwd >= tau_bkwd && tau_bkwd >= 0,
          "char_poly_discrepancy: tau_fwd >= tau_bkwd >= 0 required");
  Polynomial p;
  p.add_term(tau_fwd + 1, 1.0);
  p.add_term(tau_fwd, -1.0);
  p.add_term(tau_fwd - tau_bkwd, -alpha * delta);
  p.add_term(0, alpha * (lambda + delta));
  return p;
}

Polynomial char_poly_momentum(int tau, double beta, double alpha, double lambda) {
  require(tau >= 1, "char_poly_momentum: tau >= 1 required");
  Polynomial p;
  p.add_term(tau + 1, 1.0);
  p.add_term(tau, -(1.0 + beta));
  p.add_term(tau - 1, beta);
  p.add_term(0, alpha * lambda);
  return p;
}

Polynomial char_poly_t2(int tau_fwd, int tau_bkwd, double alpha, double lambda,
                        double delta, double gamma) {
  require(tau_fwd > tau_bkwd && tau_bkwd >= 0,
          "char_poly_t2: tau_fwd > tau_bkwd >= 0 required");
  int d = tau_fwd - tau_bkwd;
  Polynomial p;
  // (w - 1)(w - gamma) w^{tau_f} = w^{tau_f+2} - (1+gamma) w^{tau_f+1} + gamma w^{tau_f}
  p.add_term(tau_fwd + 2, 1.0);
  p.add_term(tau_fwd + 1, -(1.0 + gamma));
  p.add_term(tau_fwd, gamma);
  // alpha (lambda + delta)(w - gamma)
  p.add_term(1, alpha * (lambda + delta));
  p.add_term(0, -gamma * alpha * (lambda + delta));
  // -alpha delta w^d (w - gamma)
  p.add_term(d + 1, -alpha * delta);
  p.add_term(d, gamma * alpha * delta);
  // +alpha delta w^d * d * (1-gamma) (w - 1)
  double corr = alpha * delta * static_cast<double>(d) * (1.0 - gamma);
  p.add_term(d + 1, corr);
  p.add_term(d, -corr);
  return p;
}

Polynomial char_poly_recompute(int tau_fwd, int tau_bkwd, int tau_recomp,
                               double alpha, double lambda, double delta,
                               double phi, double gamma) {
  require(tau_fwd > tau_recomp && tau_recomp > tau_bkwd && tau_bkwd >= 0,
          "char_poly_recompute: tau_fwd > tau_recomp > tau_bkwd >= 0 required");
  int db = tau_fwd - tau_bkwd;
  int dr = tau_fwd - tau_recomp;
  Polynomial p;
  p.add_term(tau_fwd + 2, 1.0);
  p.add_term(tau_fwd + 1, -(1.0 + gamma));
  p.add_term(tau_fwd, gamma);
  p.add_term(1, alpha * (lambda + delta));
  p.add_term(0, -gamma * alpha * (lambda + delta));
  // -(delta - phi) term at delay gap db.
  p.add_term(db + 1, -alpha * (delta - phi));
  p.add_term(db, gamma * alpha * (delta - phi));
  double corr_b = alpha * (delta - phi) * static_cast<double>(db) * (1.0 - gamma);
  p.add_term(db + 1, corr_b);
  p.add_term(db, -corr_b);
  // -phi term at delay gap dr.
  p.add_term(dr + 1, -alpha * phi);
  p.add_term(dr, gamma * alpha * phi);
  double corr_r = alpha * phi * static_cast<double>(dr) * (1.0 - gamma);
  p.add_term(dr + 1, corr_r);
  p.add_term(dr, -corr_r);
  return p;
}

Polynomial char_poly_recompute_uncorrected(int tau_fwd, int tau_bkwd,
                                           int tau_recomp, double alpha,
                                           double lambda, double delta,
                                           double phi) {
  require(tau_fwd > tau_recomp && tau_recomp > tau_bkwd && tau_bkwd >= 0,
          "char_poly_recompute_uncorrected: delay ordering violated");
  Polynomial p;
  p.add_term(tau_fwd + 1, 1.0);
  p.add_term(tau_fwd, -1.0);
  p.add_term(tau_fwd - tau_bkwd, -alpha * (delta - phi));
  p.add_term(tau_fwd - tau_recomp, -alpha * phi);
  p.add_term(0, alpha * (lambda + delta));
  return p;
}

}  // namespace pipemare::theory
