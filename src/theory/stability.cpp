#include "src/theory/stability.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pipemare::theory {

double lemma1_max_alpha(double lambda, int tau) {
  if (lambda <= 0.0) throw std::invalid_argument("lemma1: lambda > 0 required");
  return 2.0 / lambda * std::sin(std::numbers::pi / (4.0 * tau + 2.0));
}

double lemma1_double_root_alpha(double lambda, int tau) {
  if (tau == 0) return 1.0 / lambda;
  double t = static_cast<double>(tau);
  return 1.0 / (lambda * (t + 1.0)) * std::pow(t / (t + 1.0), t);
}

double lemma2_bound(double lambda, double delta, int tau_fwd, int tau_bkwd) {
  double base = lemma1_max_alpha(lambda, tau_fwd);
  if (delta <= 0.0 || tau_fwd == tau_bkwd) return base;
  double disc = 2.0 / (delta * static_cast<double>(tau_fwd - tau_bkwd));
  return std::min(disc, base);
}

double lemma3_bound(double lambda, int tau) {
  return 4.0 / lambda * std::sin(std::numbers::pi / (4.0 * tau + 2.0));
}

double gamma_star(int tau_fwd, int tau_bkwd) {
  double gap = static_cast<double>(tau_fwd - tau_bkwd);
  return 1.0 - 2.0 / (gap + 1.0);
}

double d_star(int tau_fwd, int tau_bkwd) {
  double gap = static_cast<double>(tau_fwd - tau_bkwd);
  return std::pow(gamma_star(tau_fwd, tau_bkwd), gap);
}

double gamma_from_decay(double decay_d, double delay_gap) {
  if (decay_d <= 0.0) return 0.0;
  if (delay_gap <= 0.0) return 0.0;
  return std::pow(decay_d, 1.0 / delay_gap);
}

double largest_stable_alpha(const PolyFamily& family, double alpha_min,
                            double alpha_max, int bisect_iters) {
  if (!family(alpha_min).is_stable()) return 0.0;
  double lo = alpha_min;
  double hi = alpha_min;
  // Geometric scan for the first unstable alpha.
  while (hi < alpha_max) {
    hi *= 2.0;
    if (!family(hi).is_stable()) break;
    lo = hi;
  }
  if (hi >= alpha_max) return alpha_max;
  for (int i = 0; i < bisect_iters; ++i) {
    double mid = 0.5 * (lo + hi);
    if (family(mid).is_stable()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pipemare::theory
