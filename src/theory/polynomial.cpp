#include "src/theory/polynomial.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pipemare::theory {

namespace {
constexpr double kTrimEps = 1e-14;
}

Polynomial::Polynomial(std::vector<double> ascending_coeffs)
    : coeffs_(std::move(ascending_coeffs)) {}

int Polynomial::degree() const {
  for (int i = static_cast<int>(coeffs_.size()) - 1; i >= 0; --i) {
    if (std::abs(coeffs_[static_cast<std::size_t>(i)]) > kTrimEps) return i;
  }
  return -1;
}

void Polynomial::add_term(int power, double c) {
  if (power < 0) throw std::invalid_argument("add_term: negative power");
  if (static_cast<std::size_t>(power) >= coeffs_.size()) {
    coeffs_.resize(static_cast<std::size_t>(power) + 1, 0.0);
  }
  coeffs_[static_cast<std::size_t>(power)] += c;
}

Complex Polynomial::eval(Complex x) const {
  Complex acc(0.0, 0.0);
  for (int i = static_cast<int>(coeffs_.size()) - 1; i >= 0; --i) {
    acc = acc * x + coeffs_[static_cast<std::size_t>(i)];
  }
  return acc;
}

Polynomial Polynomial::derivative() const {
  int d = degree();
  if (d <= 0) return Polynomial({0.0});
  std::vector<double> out(static_cast<std::size_t>(d), 0.0);
  for (int i = 1; i <= d; ++i) {
    out[static_cast<std::size_t>(i - 1)] =
        coeffs_[static_cast<std::size_t>(i)] * static_cast<double>(i);
  }
  return Polynomial(std::move(out));
}

std::vector<Complex> Polynomial::roots(int max_iters, double tol) const {
  int d = degree();
  if (d <= 0) return {};
  // Monic normalization.
  std::vector<Complex> c(static_cast<std::size_t>(d) + 1);
  double lead = coeffs_[static_cast<std::size_t>(d)];
  for (int i = 0; i <= d; ++i) {
    c[static_cast<std::size_t>(i)] = coeffs_[static_cast<std::size_t>(i)] / lead;
  }
  auto eval_monic = [&](Complex x) {
    Complex acc(0.0, 0.0);
    for (int i = d; i >= 0; --i) acc = acc * x + c[static_cast<std::size_t>(i)];
    return acc;
  };
  // Standard Durand-Kerner initialization: powers of a non-real point that
  // is not a root of unity.
  std::vector<Complex> z(static_cast<std::size_t>(d));
  Complex seed(0.4, 0.9);
  Complex p(1.0, 0.0);
  for (int i = 0; i < d; ++i) {
    p *= seed;
    z[static_cast<std::size_t>(i)] = p;
  }
  for (int iter = 0; iter < max_iters; ++iter) {
    double max_step = 0.0;
    for (int i = 0; i < d; ++i) {
      Complex zi = z[static_cast<std::size_t>(i)];
      Complex denom(1.0, 0.0);
      for (int j = 0; j < d; ++j) {
        if (j == i) continue;
        denom *= (zi - z[static_cast<std::size_t>(j)]);
      }
      if (std::abs(denom) < 1e-300) continue;
      Complex step = eval_monic(zi) / denom;
      z[static_cast<std::size_t>(i)] = zi - step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < tol) break;
  }
  return z;
}

double Polynomial::spectral_radius() const {
  double r = 0.0;
  for (const Complex& z : roots()) r = std::max(r, std::abs(z));
  return r;
}

bool Polynomial::is_stable() const {
  int d = degree();
  if (d < 0) return false;  // zero polynomial: degenerate
  if (d == 0) return true;  // constant, no roots
  std::vector<double> a(coeffs_.begin(), coeffs_.begin() + d + 1);
  // Schur-Cohn reduction. Each step removes one degree; stability requires
  // |a_0| < |a_d| at every step. Coefficients are renormalized to keep the
  // recursion well-scaled.
  while (a.size() > 1) {
    std::size_t n = a.size() - 1;
    double scale = 0.0;
    for (double c : a) scale = std::max(scale, std::abs(c));
    if (scale == 0.0) return false;  // vanished: marginal/degenerate
    for (double& c : a) c /= scale;
    double a0 = a.front();
    double an = a.back();
    // Marginal (|a0| == |an|) counts as unstable: a root product on the
    // unit circle at this stage of the recursion.
    if (std::abs(a0) >= std::abs(an) - 1e-13) return false;
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = an * a[i + 1] - a0 * a[n - 1 - i];
    }
    a = std::move(next);
  }
  return true;
}

bool Polynomial::is_stable_winding(int samples_per_degree) const {
  int d = degree();
  if (d < 0) return false;  // zero polynomial: degenerate
  if (d == 0) return true;  // constant, no roots
  int samples = std::max(1024, samples_per_degree * d);
  // Winding number of p(e^{i t}) around the origin for t in [0, 2pi).
  double total_turn = 0.0;
  Complex prev = eval(Complex(1.0, 0.0));
  double min_mag = std::abs(prev);
  for (int s = 1; s <= samples; ++s) {
    double t = 2.0 * std::numbers::pi * static_cast<double>(s) /
               static_cast<double>(samples);
    Complex cur = eval(Complex(std::cos(t), std::sin(t)));
    min_mag = std::min(min_mag, std::abs(cur));
    // Principal-value angle increment; valid while |increment| < pi, which
    // the dense sampling guarantees away from near-zero crossings.
    total_turn += std::arg(cur / prev);
    prev = cur;
  }
  // A root on (or numerically touching) the unit circle: treat as unstable.
  double scale = 0.0;
  for (double a : coeffs_) scale += std::abs(a);
  if (min_mag < 1e-9 * std::max(1.0, scale)) return false;
  auto winding = static_cast<int>(std::lround(total_turn / (2.0 * std::numbers::pi)));
  return winding == d;
}

}  // namespace pipemare::theory
