#include "src/graph/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pipemare::graph {

std::string channel_name(Channel c) {
  switch (c) {
    case Channel::Act: return "act";
    case Channel::Skip: return "skip";
    case Channel::Ctx: return "ctx";
  }
  return "?";
}

int Graph::add_node(std::string name, std::int64_t param_count) {
  int id = num_nodes();
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.param_count = param_count;
  nodes_.push_back(std::move(n));
  return id;
}

void Graph::add_edge(int from, int to, Channel channel) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::invalid_argument("Graph::add_edge: node id out of range");
  }
  if (from == to) {
    throw std::invalid_argument("Graph::add_edge: self-edge on node " +
                                std::to_string(from) + " (" +
                                nodes_[static_cast<std::size_t>(from)].name + ")");
  }
  edges_.push_back(Edge{from, to, channel});
  nodes_[static_cast<std::size_t>(from)].outputs.push_back(to);
  nodes_[static_cast<std::size_t>(to)].inputs.push_back(from);
}

Graph Graph::lower(const nn::Model& model) {
  Graph g;
  for (int m = 0; m < model.num_modules(); ++m) {
    const nn::Module& mod = model.module(m);
    g.add_node(mod.name(), mod.param_count());
  }
  // Chain edges: module i consumes module i-1's main activation.
  for (int m = 1; m < model.num_modules(); ++m) {
    g.add_edge(m - 1, m, Channel::Act);
  }
  // Auxiliary-channel edges from the modules' declared FlowEffects. The
  // skip channel holds at most one open shortcut at a time (Flow's
  // contract), so an open connects to the next close; the ctx channel is
  // write-once broadcast, so the producer connects to every later consumer.
  int open_skip = -1;  ///< node id of the open ResidualOpen, -1 = none
  int ctx_producer = -1;
  for (int m = 0; m < model.num_modules(); ++m) {
    const nn::FlowEffects fx = model.module(m).flow_effects();
    if (fx.consumes_skip) {
      if (open_skip < 0) {
        throw std::invalid_argument("Graph::lower: module " + std::to_string(m) +
                                    " (" + model.module(m).name() +
                                    ") consumes a skip but no shortcut is open");
      }
      g.add_edge(open_skip, m, Channel::Skip);
      open_skip = -1;
    }
    if (fx.produces_skip) {
      if (open_skip >= 0) {
        throw std::invalid_argument("Graph::lower: module " + std::to_string(m) +
                                    " (" + model.module(m).name() +
                                    ") opens a shortcut while one is already open");
      }
      open_skip = m;
    }
    if (fx.consumes_ctx) {
      if (ctx_producer < 0) {
        throw std::invalid_argument("Graph::lower: module " + std::to_string(m) +
                                    " (" + model.module(m).name() +
                                    ") consumes ctx before any producer");
      }
      g.add_edge(ctx_producer, m, Channel::Ctx);
    }
    if (fx.produces_ctx) ctx_producer = m;
  }
  if (open_skip >= 0) {
    throw std::invalid_argument("Graph::lower: shortcut opened by module " +
                                std::to_string(open_skip) + " is never closed");
  }
  return g;
}

std::vector<int> Graph::linearize() const {
  const auto n = static_cast<std::size_t>(num_nodes());
  std::vector<int> indegree(n, 0);
  for (const Edge& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];

  // Min-heap over ready node ids: the lowest ready id runs first, making
  // the order deterministic (and the identity for chain-appended models).
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int i = 0; i < num_nodes(); ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push(i);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int id = ready.top();
    ready.pop();
    order.push_back(id);
    for (int succ : nodes_[static_cast<std::size_t>(id)].outputs) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  if (order.size() != n) {
    for (int i = 0; i < num_nodes(); ++i) {
      if (indegree[static_cast<std::size_t>(i)] > 0) {
        throw std::invalid_argument("Graph::linearize: cycle through node " +
                                    std::to_string(i) + " (" +
                                    nodes_[static_cast<std::size_t>(i)].name + ")");
      }
    }
  }
  return order;
}

bool Graph::linearization_is_identity() const {
  std::vector<int> order = linearize();
  for (int i = 0; i < num_nodes(); ++i) {
    if (order[static_cast<std::size_t>(i)] != i) return false;
  }
  return true;
}

bool Graph::is_topological_order(std::span<const int> order) const {
  if (order.size() != static_cast<std::size_t>(num_nodes())) return false;
  std::vector<int> pos(static_cast<std::size_t>(num_nodes()), -1);
  for (std::size_t p = 0; p < order.size(); ++p) {
    int id = order[p];
    if (id < 0 || id >= num_nodes()) return false;
    if (pos[static_cast<std::size_t>(id)] >= 0) return false;  // duplicate
    pos[static_cast<std::size_t>(id)] = static_cast<int>(p);
  }
  for (const Edge& e : edges_) {
    if (pos[static_cast<std::size_t>(e.from)] >= pos[static_cast<std::size_t>(e.to)]) {
      return false;
    }
  }
  return true;
}

int Graph::cut_crossings(std::span<const int> order, int cut) const {
  if (!is_topological_order(order)) {
    throw std::invalid_argument("Graph::cut_crossings: order is not topological");
  }
  if (cut < 0 || cut > num_nodes()) {
    throw std::invalid_argument("Graph::cut_crossings: cut position out of range");
  }
  std::vector<int> pos(static_cast<std::size_t>(num_nodes()), 0);
  for (std::size_t p = 0; p < order.size(); ++p) {
    pos[static_cast<std::size_t>(order[p])] = static_cast<int>(p);
  }
  int crossings = 0;
  for (const Edge& e : edges_) {
    if (pos[static_cast<std::size_t>(e.from)] < cut &&
        pos[static_cast<std::size_t>(e.to)] >= cut) {
      ++crossings;
    }
  }
  return crossings;
}

std::vector<nn::WeightUnit> linearized_weight_units(const Graph& graph,
                                                    const nn::Model& model,
                                                    bool split_bias) {
  if (graph.num_nodes() != model.num_modules()) {
    throw std::invalid_argument(
        "linearized_weight_units: graph has " + std::to_string(graph.num_nodes()) +
        " nodes but the model has " + std::to_string(model.num_modules()) +
        " modules");
  }
  // The flat parameter *layout* is the model's (module-index order); only
  // the unit ordering follows the linearization. Group the model's units
  // by module, then emit the groups in execution order.
  std::vector<nn::WeightUnit> by_module = model.weight_units(split_bias);
  std::vector<std::pair<int, int>> span_of(  // module -> [first, last) in by_module
      static_cast<std::size_t>(model.num_modules()), {0, 0});
  for (std::size_t i = 0; i < by_module.size(); ++i) {
    auto m = static_cast<std::size_t>(by_module[i].module);
    if (span_of[m].second == 0) span_of[m].first = static_cast<int>(i);
    span_of[m].second = static_cast<int>(i) + 1;
  }
  std::vector<nn::WeightUnit> out;
  out.reserve(by_module.size());
  for (int id : graph.linearize()) {
    auto [first, last] = span_of[static_cast<std::size_t>(id)];
    for (int i = first; i < last; ++i) {
      out.push_back(by_module[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

}  // namespace pipemare::graph
