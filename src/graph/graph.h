#pragma once

// Op-graph IR over nn::Model — the partitioner's view of a model.
//
// nn::Model is a *sequential* module list; the non-sequential constructs
// our models need (residual shortcuts, the encoder-memory channel) ride
// along as auxiliary Flow channels. That was enough while partitioning
// meant "cut the module list", but it leaves the actual dependency
// structure implicit. This IR makes it explicit: Graph::lower builds one
// Node per module, chain edges i-1 -> i for the main activation, and
// skip/ctx edges from each module's declared FlowEffects. The partitioner
// (pipeline::make_partition) now consumes the graph's *linearization*
// instead of the raw module order, so today's chain models are the
// degenerate case and non-chain lowerings (fusion passes, true DAG
// frontends) have a seam to plug into.
//
// Invariant the executors rely on: models are constructed by appending
// modules in executable order, so every lowered edge goes from a lower
// node id to a higher one, and the deterministic Kahn linearization
// (lowest ready id first) is exactly the identity order. tests assert this
// for every in-tree model; Graph::linearize() still handles (and orders)
// arbitrary DAGs, and throws on cycles.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/nn/model.h"

namespace pipemare::graph {

/// Which Flow channel an edge carries.
enum class Channel {
  Act,   ///< main activation `x` (the chain)
  Skip,  ///< open residual shortcut (ResidualOpen -> ResidualClose)
  Ctx,   ///< encoder memory (DecoderBridge -> each cross-attention)
};

std::string channel_name(Channel c);

/// A dependency: `to` needs a tensor produced by `from`.
struct Edge {
  int from = 0;
  int to = 0;
  Channel channel = Channel::Act;
};

/// One op in the IR. For a graph lowered from an nn::Model, `id` is the
/// module index and `param_count` its flat parameter count; inputs /
/// outputs list the neighbouring node ids (edge indices are in
/// Graph::edges()).
struct Node {
  int id = 0;
  std::string name;
  std::int64_t param_count = 0;
  std::vector<int> inputs;   ///< predecessor node ids, in edge-add order
  std::vector<int> outputs;  ///< successor node ids, in edge-add order
};

/// The op graph. Build one with Graph::lower(model), or assemble one
/// manually with add_node / add_edge (tests, future non-model frontends).
class Graph {
 public:
  Graph() = default;

  /// Lowers a sequential model into the IR: one node per module, Act chain
  /// edges between consecutive modules, plus Skip/Ctx edges derived from
  /// each module's FlowEffects (an open skip connects to the module that
  /// closes it; a ctx producer connects to every later ctx consumer).
  /// Throws std::invalid_argument on inconsistent effects (a skip closed
  /// while none is open, ctx consumed before any producer).
  static Graph lower(const nn::Model& model);

  /// Appends a node; returns its id (== index).
  int add_node(std::string name, std::int64_t param_count = 0);

  /// Adds a dependency edge; nodes must exist. Self-edges are rejected.
  void add_edge(int from, int to, Channel channel);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Deterministic Kahn topological sort: among ready nodes, the lowest id
  /// runs first. Returns node ids in execution order; throws
  /// std::invalid_argument naming a cycle member if the graph is cyclic.
  std::vector<int> linearize() const;

  /// True when linearize() returns 0, 1, ..., n-1 — the executors'
  /// requirement (nn::Model runs modules in index order). Holds for every
  /// model lowered from a topologically-appended module list.
  bool linearization_is_identity() const;

  /// True when every edge flows forward in `order` (order[i] = the node at
  /// position i) — i.e. `order` is a valid topological order, which makes
  /// *every* contiguous cut of it a legal stage boundary: all tensors
  /// crossing a cut flow from the prefix to the suffix, never backward.
  bool is_topological_order(std::span<const int> order) const;

  /// Number of edges crossing the cut between positions [0, cut) and
  /// [cut, n) of `order` — the activation-traffic width of a stage
  /// boundary (chain cuts cross 1; a cut inside a residual block crosses
  /// the skip edge too). Requires a topological `order`.
  int cut_crossings(std::span<const int> order, int cut) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// The model's weight units in the graph's linearized execution order —
/// what pipeline::make_partition partitions. For in-tree models the
/// linearization is the identity, so this reproduces
/// model.weight_units(split_bias) exactly (tests assert it).
std::vector<nn::WeightUnit> linearized_weight_units(const Graph& graph,
                                                    const nn::Model& model,
                                                    bool split_bias);

}  // namespace pipemare::graph
