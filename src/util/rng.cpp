#include "src/util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pipemare::util {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
constexpr std::uint64_t kIncrement = 1442695040888963407ULL;
}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31U);
}

double counter_uniform(std::uint64_t key, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  // Chained SplitMix64 finalizers: each input is fully mixed before the
  // next is folded in, so nearby counter tuples decorrelate completely.
  std::uint64_t h = mix64(key);
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(h >> 11U) * 0x1.0p-53;
}

Rng::Rng(std::uint64_t seed) : state_(seed + kIncrement) { next_u32(); }

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * kMultiplier + kIncrement;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

double Rng::uniform() {
  // 53-bit mantissa from two draws for full double resolution.
  std::uint64_t hi = next_u32();
  std::uint64_t lo = next_u32();
  std::uint64_t bits = ((hi << 21U) ^ lo) & ((1ULL << 53U) - 1U);
  return static_cast<double>(bits) / static_cast<double>(1ULL << 53U);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

int Rng::randint(int n) {
  if (n <= 0) throw std::invalid_argument("Rng::randint: n must be positive");
  // Rejection sampling to avoid modulo bias.
  auto bound = static_cast<std::uint32_t>(n);
  std::uint32_t threshold = (0U - bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return static_cast<int>(r % bound);
  }
}

double Rng::truncated_exponential(double mean, double max_value) {
  if (mean <= 0.0) return 0.0;
  // Inverse-CDF sampling of Exp(1/mean) conditioned on [0, max_value].
  double cdf_max = 1.0 - std::exp(-max_value / mean);
  double u = uniform() * cdf_max;
  return -mean * std::log(1.0 - u);
}

void Rng::shuffle(std::vector<int>& v) {
  for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
    int j = randint(i + 1);
    std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
  }
}

Rng Rng::split() {
  std::uint64_t child_seed = (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
  return Rng(child_seed);
}

}  // namespace pipemare::util
