#pragma once

#include <cstdint>
#include <vector>

namespace pipemare::util {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function. The
/// building block of the library's *counter-based* (stateless) random
/// streams — every output is a pure function of its inputs, so concurrent
/// consumers need no shared generator state (Philox-style, Salmon et al.).
std::uint64_t mix64(std::uint64_t x);

/// Uniform double in [0, 1) derived from a counter tuple: a pure function
/// of (key, a, b, c). Used by Dropout's per-microbatch mask streams, where
/// the four arguments are (module seed, optimizer step, microbatch index,
/// element index) — identical inputs give identical masks on every
/// thread, on every platform.
double counter_uniform(std::uint64_t key, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c);

/// Deterministic 64-bit PCG (PCG-XSH-RR) random number generator.
///
/// All randomness in the library flows through this class so that every
/// experiment is exactly reproducible from a seed. The generator is cheap
/// to copy, which lets callers fork independent streams (see `split`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 32-bit value.
  std::uint32_t next_u32();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal sample (Box-Muller, cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  int randint(int n);

  /// Sample from a truncated exponential distribution on [0, max_value]
  /// with the given mean parameter (mean of the *untruncated* law).
  /// Used by the Hogwild!-style asynchrony model (Appendix E).
  double truncated_exponential(double mean, double max_value);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Fork a statistically independent child stream. The child is seeded
  /// from this stream's output, so splitting is itself deterministic.
  Rng split();

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pipemare::util
