#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace pipemare::util {

/// Nanoseconds between two steady-clock points (the shared timing helper
/// of the per-stage load counters and the measured cost profiler).
inline std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                                std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance; returns 0 for fewer than two elements.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Maximum value; requires a non-empty span.
double max_value(std::span<const double> xs);

double min_value(std::span<const double> xs);

/// Index of the maximum element; requires a non-empty span.
int argmax(std::span<const float> xs);

/// L2 norm.
double l2_norm(std::span<const float> xs);

/// Exponential moving average of a series with decay `gamma`:
/// e_0 = x_0, e_t = gamma * e_{t-1} + (1 - gamma) * x_t.
std::vector<double> ema(std::span<const double> xs, double gamma);

/// True if the value is NaN, infinite, or has magnitude above `limit`.
bool diverged(double value, double limit = 1e6);

}  // namespace pipemare::util
