#pragma once

#include <map>
#include <string>

namespace pipemare::util {

/// Minimal `--key=value` command-line parser for benches and examples.
///
/// Every bench accepts `--quick=1` to shrink workloads for smoke runs and
/// `--seed=<n>` for reproducibility; each binary documents its own extras.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pipemare::util
