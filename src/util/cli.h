#pragma once

#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pipemare::util {

/// Minimal `--key=value` command-line parser for benches and examples.
///
/// Every bench accepts `--quick=1` to shrink workloads for smoke runs and
/// `--seed=<n>` for reproducibility; each binary documents its own extras.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// One row of a flag-routing table: `flag` is only meaningful under the
/// listed selections (backend names, batch policies, ...); passing it with
/// any other selection is an error, with `hint` telling the user where the
/// flag belongs.
struct FlagRule {
  std::string flag;                      ///< CLI key, without the leading --
  std::vector<std::string> accepted_by;  ///< selections that honor the flag
  std::string hint;                      ///< appended to the error message
};

/// Rejects (throws std::invalid_argument) any present flag whose rule does
/// not list `selected` — a flag the selected mode cannot honor is an error,
/// never silently dropped. `context` prefixes the message (the parser's
/// name). With `enforce` false the check is skipped entirely: selections
/// outside the table (custom registered backends) own their flags.
void reject_mismatched_flags(const Cli& cli, std::string_view context,
                             std::string_view selected, bool enforce,
                             std::span<const FlagRule> rules);

}  // namespace pipemare::util
