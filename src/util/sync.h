#pragma once

// Annotated synchronization primitives: the repo's *only* legal spelling of
// a mutex or condition variable (scripts/check_invariants.sh enforces that
// raw std::mutex / std::condition_variable appear nowhere else under src/).
//
// The wrappers carry Clang's -Wthread-safety capability attributes, so a
// Clang build proves the lock discipline of the whole runtime at compile
// time: every field annotated GUARDED_BY(mu) can only be touched while
// `mu` is held, every method annotated REQUIRES(mu) can only be called
// with `mu` held, and MutexLock's scoped acquire/release is tracked
// through every control path (including exceptional returns). Under GCC
// the attributes expand to nothing and the wrappers compile down to the
// std types they hold — zero size or call overhead (asserted in
// tests/test_sync.cpp and timed in bench/micro_sync.cpp).
//
// Why this matters here: the repo's core invariant — bitwise parity across
// the concurrent backends — rests on a small set of locking protocols
// (generation barriers, mailbox credits, scheduler gates). The planned
// free-running-commit work deliberately *weakens* those protocols into
// seqlock reads; with the contracts in the type system, each relaxation is
// an explicit, reviewable annotation change instead of a silent race that
// only fires if a TSan run happens to exercise it. The deliberately-broken
// TUs in tests/static/ assert the analysis actually rejects violations.
//
// Style follows abseil's thread_annotations.h / absl::Mutex surface; the
// attribute names are Clang's "capability" vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PIPEMARE_TSA(x) __attribute__((x))
#else
#define PIPEMARE_TSA(x)  // no-op outside Clang (GCC ignores the analysis)
#endif

// -- Attributes on types ----------------------------------------------------
#define CAPABILITY(x) PIPEMARE_TSA(capability(x))
#define SCOPED_CAPABILITY PIPEMARE_TSA(scoped_lockable)

// -- Attributes on data members ---------------------------------------------
#define GUARDED_BY(x) PIPEMARE_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) PIPEMARE_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PIPEMARE_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PIPEMARE_TSA(acquired_after(__VA_ARGS__))

// -- Attributes on functions ------------------------------------------------
#define REQUIRES(...) PIPEMARE_TSA(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) PIPEMARE_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) PIPEMARE_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PIPEMARE_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PIPEMARE_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PIPEMARE_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) PIPEMARE_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS PIPEMARE_TSA(no_thread_safety_analysis)

namespace pipemare::util {

/// std::mutex with the `capability` attribute: lockable state the analysis
/// can reason about. Use with MutexLock for scoped sections and CondVar
/// for waiting; call lock()/unlock() directly only where a scope does not
/// fit (the analysis still checks balance on every path).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII scoped lock (std::lock_guard with scope tracking): acquires in the
/// constructor, releases in the destructor, and the analysis knows the
/// mutex is held for exactly the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::condition_variable bound to util::Mutex. wait() REQUIRES the mutex,
/// so "waited without holding the lock" is a compile error, not a deadlock
/// found at runtime. There is no predicate overload on purpose: Clang's
/// analysis is intra-procedural and does not propagate the held lock into
/// a lambda body, so predicate lambdas over GUARDED_BY fields would be
/// rejected — callers write the standard `while (!cond) cv.wait(mu);` loop
/// instead, which the analysis checks exactly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups are possible, as with std::condition_variable.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scope
  }

  /// Timed wait: atomically releases `mu`, blocks until notified or until
  /// `timeout` elapses, reacquires `mu`. Returns false iff the wait timed
  /// out. Spurious wakeups are possible either way, so callers re-check
  /// their predicate in the usual while-loop regardless of the result; the
  /// return value only distinguishes "deadline passed" for callers that
  /// act on the deadline itself (the serving runtime's batch-flush and
  /// request-deadline timers).
  bool wait_for(Mutex& mu, std::chrono::nanoseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    auto status = cv_.wait_for(lk, timeout);
    lk.release();  // ownership stays with the caller's scope
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pipemare::util
