#include "src/util/table.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pipemare::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_x(double value, int precision) {
  if (!std::isfinite(value)) return "-";
  return fmt(value, precision) + "X";
}

}  // namespace pipemare::util
