#include "src/util/cli.h"

#include <stdexcept>

namespace pipemare::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    // insert_or_assign with prebuilt strings (rather than values_[k] = v on
    // substr results) keeps GCC 12's -O3 -Wrestrict false positive
    // (PR 105329) out of -Werror builds.
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    std::string value = eq == std::string::npos ? std::string("1") : body.substr(eq + 1);
    values_.insert_or_assign(std::move(key), std::move(value));
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

void reject_mismatched_flags(const Cli& cli, std::string_view context,
                             std::string_view selected, bool enforce,
                             std::span<const FlagRule> rules) {
  if (!enforce) return;
  for (const FlagRule& rule : rules) {
    if (!cli.has(rule.flag)) continue;
    bool accepted = false;
    for (const std::string& name : rule.accepted_by) {
      if (name == selected) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      throw std::invalid_argument(std::string(context) + ": --" + rule.flag +
                                  " " + rule.hint);
    }
  }
}

}  // namespace pipemare::util
