#pragma once

#include <string>
#include <vector>

namespace pipemare::util {

/// Fixed-width console table, used by the bench harnesses to print
/// paper-style tables (Table 1-5) and figure series.
///
/// Usage:
///   Table t({"Method", "Best", "Target", "Speedup"});
///   t.add_row({"PipeMare", "95.0", "94.0", "3.3X"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header separator and per-column alignment padding.
  std::string to_string() const;

  /// Renders as CSV (no padding), suitable for plotting scripts.
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, mapping non-finite values to
/// "inf"/"nan" (the paper uses infinity for unreachable time-to-accuracy).
std::string fmt(double value, int precision = 3);

/// Formats a ratio as the paper's "X" notation, e.g. 3.28 -> "3.3X".
std::string fmt_x(double value, int precision = 1);

}  // namespace pipemare::util
