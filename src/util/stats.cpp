#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipemare::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty span");
  return *std::min_element(xs.begin(), xs.end());
}

int argmax(std::span<const float> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty span");
  return static_cast<int>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double l2_norm(std::span<const float> xs) {
  double s = 0.0;
  for (float x : xs) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

std::vector<double> ema(std::span<const double> xs, double gamma) {
  std::vector<double> out;
  out.reserve(xs.size());
  double e = 0.0;
  bool first = true;
  for (double x : xs) {
    e = first ? x : gamma * e + (1.0 - gamma) * x;
    first = false;
    out.push_back(e);
  }
  return out;
}

bool diverged(double value, double limit) {
  return !std::isfinite(value) || std::abs(value) > limit;
}

}  // namespace pipemare::util
