#pragma once

// Minimal ordered JSON emitter, shared by the BENCH_*.json bench snapshots
// (bench/bench_json.h) and the observability exporters (obs::write_chrome_trace,
// obs::MetricsRegistry snapshots) — one escaping/ordering/precision
// implementation, so trace files, metric dumps and bench snapshots never
// drift apart in formatting. Hand-rolled on purpose — the repo takes no
// external dependencies, and the writers only need ordered objects, arrays,
// numbers, strings and bools.

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pipemare::util {

/// An ordered JSON value: build with Json::object() / Json::array() and
/// the value constructors, nest with set() / push(), serialize with
/// dump(). Keys keep insertion order so snapshots diff cleanly.
class Json {
 public:
  Json() : kind_(Kind::Null) {}
  Json(bool v) : kind_(Kind::Bool), bool_(v) {}                      // NOLINT
  Json(double v) : kind_(Kind::Number), num_(v) {}                   // NOLINT
  Json(int v) : kind_(Kind::Number), num_(v) {}                      // NOLINT
  Json(std::int64_t v)                                               // NOLINT
      : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v)                                              // NOLINT
      : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(std::string v) : kind_(Kind::String), str_(std::move(v)) {}   // NOLINT
  Json(const char* v) : kind_(Kind::String), str_(v) {}              // NOLINT

  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }

  /// Appends a key to an object (insertion order preserved).
  Json& set(std::string key, Json value) {
    if (kind_ != Kind::Object) {
      throw std::logic_error("Json::set: not an object");
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an element to an array.
  Json& push(Json value) {
    if (kind_ != Kind::Array) {
      throw std::logic_error("Json::push: not an array");
    }
    elements_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::ostringstream out;
    write(out, indent, 0);
    out << '\n';
    return out.str();
  }

 private:
  enum class Kind { Null, Bool, Number, String, Object, Array };

  static void escape(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << c;
      }
    }
    out << '"';
  }

  void write(std::ostream& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    switch (kind_) {
      case Kind::Null: out << "null"; break;
      case Kind::Bool: out << (bool_ ? "true" : "false"); break;
      case Kind::Number: {
        // NaN / inf are not representable in JSON; null keeps the file valid.
        if (!std::isfinite(num_)) {
          out << "null";
          break;
        }
        std::ostringstream num;
        num.precision(12);
        num << num_;
        out << num.str();
        break;
      }
      case Kind::String: escape(out, str_); break;
      case Kind::Object: {
        if (members_.empty()) {
          out << "{}";
          break;
        }
        out << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << pad;
          escape(out, members_[i].first);
          out << ": ";
          members_[i].second.write(out, indent, depth + 1);
          out << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        out << close_pad << '}';
        break;
      }
      case Kind::Array: {
        if (elements_.empty()) {
          out << "[]";
          break;
        }
        out << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out << pad;
          elements_[i].write(out, indent, depth + 1);
          out << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        out << close_pad << ']';
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace pipemare::util
