#include "src/hwmodel/gpipe_throughput.h"

#include <algorithm>
#include <stdexcept>

namespace pipemare::hwmodel {

double gpipe_latency_factor(double alpha, bool recompute) {
  if (alpha <= 0.0) throw std::invalid_argument("gpipe latency: alpha > 0 required");
  double fwd_saturation = recompute ? 4.0 : 3.0;
  double bwd_saturation = recompute ? 4.0 / 3.0 : 1.5;
  double l_fwd = std::max(alpha / fwd_saturation, 1.0);
  double l_bwd = std::max(alpha / bwd_saturation, 1.0);
  return l_fwd + l_bwd;
}

double gpipe_relative_throughput(double alpha, bool recompute) {
  return alpha / (gpipe_latency_factor(alpha, recompute) * (1.0 + alpha));
}

double gpipe_max_relative_throughput(bool recompute, double* best_alpha) {
  double best_a = 1.0;
  double best_t = 0.0;
  for (double a = 0.05; a <= 20.0; a += 0.001) {
    double t = gpipe_relative_throughput(a, recompute);
    if (t > best_t) {
      best_t = t;
      best_a = a;
    }
  }
  if (best_alpha != nullptr) *best_alpha = best_a;
  return best_t;
}

}  // namespace pipemare::hwmodel
