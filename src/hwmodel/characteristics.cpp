#include "src/hwmodel/characteristics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pipemare::hwmodel {

using pipeline::Method;

namespace {
double table1_tau(int stages, int microbatches, int stage_1indexed) {
  if (stage_1indexed < 1 || stage_1indexed > stages) {
    throw std::invalid_argument("table1_tau: stage out of range");
  }
  return static_cast<double>(2 * (stages - stage_1indexed) + 1) /
         static_cast<double>(microbatches);
}
}  // namespace

double tau_fwd(Method m, int stages, int microbatches, int stage_1indexed) {
  if (m == Method::Sync) return 0.0;
  return table1_tau(stages, microbatches, stage_1indexed);
}

double tau_bkwd(Method m, int stages, int microbatches, int stage_1indexed) {
  if (m == Method::PipeDream) return table1_tau(stages, microbatches, stage_1indexed);
  return 0.0;
}

double normalized_throughput_simple(Method m, int stages, int microbatches) {
  if (m == Method::Sync) {
    return static_cast<double>(microbatches) /
           static_cast<double>(microbatches + stages - 1);
  }
  return 1.0;
}

double normalized_throughput_budget(Method m) { return m == Method::Sync ? 0.3 : 1.0; }

double weight_memory_copies(Method m, int stages, int microbatches) {
  if (m == Method::PipeDream) {
    return 1.0 + static_cast<double>(stages) / static_cast<double>(microbatches);
  }
  return 1.0;
}

MemoryBreakdown weight_opt_memory(Method m, int stages, int microbatches,
                                  int optimizer_state_copies, bool t2) {
  MemoryBreakdown mem;
  mem.optimizer_state = optimizer_state_copies;
  if (m == Method::PipeDream) {
    mem.stash = static_cast<double>(stages) / static_cast<double>(microbatches);
  }
  if (m == Method::PipeMare && t2) mem.t2_delta = 1.0;
  return mem;
}

double memory_factor_vs_gpipe(Method m, int stages, int microbatches,
                              int optimizer_state_copies, bool t2) {
  MemoryBreakdown base = weight_opt_memory(Method::Sync, stages, microbatches,
                                           optimizer_state_copies, false);
  MemoryBreakdown mem = weight_opt_memory(m, stages, microbatches,
                                          optimizer_state_copies, t2);
  return mem.total() / base.total();
}

double time_to_target(double epochs_to_target, double throughput) {
  if (epochs_to_target < 0.0 || throughput <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return epochs_to_target / throughput;
}

double amortized_throughput(int warmup_epochs, int total_epochs, double sync_throughput) {
  if (total_epochs <= 0) throw std::invalid_argument("amortized_throughput: epochs > 0");
  int warm = std::min(warmup_epochs, total_epochs);
  double cost = static_cast<double>(warm) / sync_throughput +
                static_cast<double>(total_epochs - warm);
  return static_cast<double>(total_epochs) / cost;
}

}  // namespace pipemare::hwmodel
