#include "src/hwmodel/activation_memory.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pipemare::hwmodel {

std::vector<std::int64_t> pipemare_activation_counts(int stages) {
  if (stages < 1) throw std::invalid_argument("activation counts: stages >= 1");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    counts[static_cast<std::size_t>(i)] = 2 * (stages - 1 - i) + 1;
  }
  return counts;
}

std::vector<std::int64_t> pipemare_recompute_counts(int stages, int segment_size) {
  if (segment_size < 1) throw std::invalid_argument("recompute counts: S >= 1");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    int offset = i % segment_size;
    if (offset == 0) {
      // Segment start: checkpoints for every in-flight microbatch.
      counts[static_cast<std::size_t>(i)] = 2 * (stages - 1 - i) + 1;
    } else {
      // In-segment stage: recompute starts 2(S-1-offset) ticks before its
      // backward; it holds that many recomputed activations plus its own.
      int seg_len = std::min(segment_size, stages - (i - offset));
      counts[static_cast<std::size_t>(i)] = 2 * (seg_len - 1 - offset) + 1;
    }
  }
  return counts;
}

std::int64_t total_activations(const std::vector<std::int64_t>& counts) {
  std::int64_t sum = 0;
  for (std::int64_t c : counts) sum += c;
  return sum;
}

int optimal_segment_size(int stages) {
  int best_s = 1;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int s = 1; s <= stages; ++s) {
    std::int64_t total = total_activations(pipemare_recompute_counts(stages, s));
    if (total < best) {
      best = total;
      best_s = s;
    }
  }
  return best_s;
}

std::int64_t gpipe_total_activations(int stages, int microbatches) {
  return static_cast<std::int64_t>(stages) * microbatches;
}

std::int64_t gpipe_recompute_total(int stages, int microbatches, int segment_size) {
  if (segment_size < 1) throw std::invalid_argument("gpipe recompute: S >= 1");
  std::int64_t total = 0;
  for (int i = 0; i < stages; ++i) {
    int offset = i % segment_size;
    if (offset == 0) {
      total += microbatches;  // flush boundary: N checkpoints
    } else {
      int seg_len = std::min(segment_size, stages - (i - offset));
      total += 2 * (seg_len - 1 - offset) + 1;
    }
  }
  return total;
}

int gpipe_optimal_segment_size(int stages, int microbatches) {
  int best_s = 1;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int s = 1; s <= stages; ++s) {
    std::int64_t total = gpipe_recompute_total(stages, microbatches, s);
    if (total < best) {
      best = total;
      best_s = s;
    }
  }
  return best_s;
}

double table5_ratio(int stages) { return 1.0 / std::sqrt(static_cast<double>(stages)); }

double counted_recompute_ratio(int stages) {
  int s = optimal_segment_size(stages);
  double rec = static_cast<double>(total_activations(pipemare_recompute_counts(stages, s)));
  double base = static_cast<double>(total_activations(pipemare_activation_counts(stages)));
  return rec / base;
}

}  // namespace pipemare::hwmodel
