#pragma once

namespace pipemare::hwmodel {

/// Appendix A.3: GPipe vs PipeMare throughput under equal activation-memory
/// and compute budgets.
///
/// Model: PipeMare saturates its budget at microbatch size M_PM with unit
/// stage latency (1/3 of compute on forward, 2/3 on backward). GPipe runs
/// its phases separately, so a microbatch of alpha * M_PM has forward /
/// backward latencies
///   l_fwd  = max(alpha/3, 1),  l_bkwd = max(2*alpha/3, 1)
/// (denominators 4 and 4/3 with recompute enabled, where 1/4 of compute is
/// reserved for recomputation). The equal-memory constraint forces
/// N = P/alpha, giving relative throughput
///   T(alpha) = alpha / ((l_fwd + l_bkwd) * (1 + alpha)).
/// The maximum over alpha is exactly 0.30 (at the case boundary
/// alpha = 3/2) without recompute, and ~0.286 with recompute — the paper's
/// 0.3 / 0.29. (The paper places the optimum at sqrt(3/2), which lies
/// outside its own case-3 domain; the attained maximum is the same.)

/// Combined per-microbatch latency factor l_fwd + l_bkwd.
double gpipe_latency_factor(double alpha, bool recompute);

/// Relative (to PipeMare) throughput at microbatch ratio alpha.
double gpipe_relative_throughput(double alpha, bool recompute);

/// Maximizes T(alpha) by dense scan + local refinement. If `best_alpha`
/// is non-null it receives the argmax.
double gpipe_max_relative_throughput(bool recompute, double* best_alpha = nullptr);

}  // namespace pipemare::hwmodel
