#pragma once

#include <cstdint>
#include <vector>

namespace pipemare::hwmodel {

/// Activation-memory models of Appendix A.1-A.2, in units of one
/// microbatch activation M per layer. Counts assume the fine-grained
/// setting P = L (one layer per stage), the regime the appendix analyzes.

/// PipeMare/PipeDream without recompute: stage i (0-indexed) holds
/// 2(P-1-i)+1 in-flight microbatch activations; total = P^2 (eq. 9).
std::vector<std::int64_t> pipemare_activation_counts(int stages);

/// PipeMare Recompute with segments of size S (Appendix A.2 / Figure 6):
/// the first stage of each segment keeps its full in-flight checkpoint
/// window 2(P-1-i)+1; stage j >= 1 within a segment only needs the
/// 2(S-1-j)+1 recompute buffers. Total ~ P(P/S + S), minimized at S~sqrt(P).
std::vector<std::int64_t> pipemare_recompute_counts(int stages, int segment_size);

std::int64_t total_activations(const std::vector<std::int64_t>& counts);

/// Segment size minimizing the recompute total (numerically; ~sqrt(P)).
int optimal_segment_size(int stages);

/// GPipe totals: N activations per stage without recompute (O(MNL)); with
/// recompute, segment starts keep N checkpoints and the rest keep their
/// recompute buffers: total ~ P(N/S + S), minimized at S~sqrt(N) (eq. 11).
std::int64_t gpipe_total_activations(int stages, int microbatches);
std::int64_t gpipe_recompute_total(int stages, int microbatches, int segment_size);
int gpipe_optimal_segment_size(int stages, int microbatches);

/// The paper's closed-form big-O ratio used in Table 5:
/// recompute/no-recompute memory = P^{3/2} / P^2 = 1/sqrt(P)
/// (0.097X at P=107, 0.104X at 93, 0.105X at 91).
double table5_ratio(int stages);

/// Exact ratio from our counted buffers at the optimal segment size.
double counted_recompute_ratio(int stages);

}  // namespace pipemare::hwmodel
