#pragma once

#include <string>

#include "src/pipeline/engine.h"

namespace pipemare::hwmodel {

/// Analytic characterization of the three pipeline-parallel training
/// methods (Table 1 of the paper) plus the weight+optimizer memory
/// accounting used in Tables 2 and 3. All quantities are in units of one
/// weight copy W unless stated otherwise.

/// Table 1, tau_fwd for 1-indexed stage i: (2(P-i)+1)/N for PipeDream and
/// PipeMare, 0 for GPipe.
double tau_fwd(pipeline::Method m, int stages, int microbatches, int stage_1indexed);

/// Table 1, tau_bkwd: equals tau_fwd for PipeDream, 0 otherwise.
double tau_bkwd(pipeline::Method m, int stages, int microbatches, int stage_1indexed);

/// Table 1, normalized throughput: 1.0 for PipeDream/PipeMare,
/// N/(N+P-1) for GPipe (fill/drain bubbles).
double normalized_throughput_simple(pipeline::Method m, int stages, int microbatches);

/// Appendix A.3: GPipe's best achievable throughput relative to PipeMare
/// under *equal activation-memory and compute budgets* is ~0.30 regardless
/// of P. The paper uses this constant for its time-to-accuracy estimates;
/// so do we. PipeDream/PipeMare: 1.0.
double normalized_throughput_budget(pipeline::Method m);

/// Table 1, weights memory in units of W: 1 for GPipe/PipeMare,
/// 1 + P/N for PipeDream (live copy + stashed copies summed over stages).
double weight_memory_copies(pipeline::Method m, int stages, int microbatches);

/// Weight + optimizer memory accounting (the Table 2/3 column).
struct MemoryBreakdown {
  double weights = 1.0;
  double gradients = 1.0;
  double optimizer_state = 0.0;  ///< momentum: 1; Adam: 2
  double stash = 0.0;            ///< PipeDream stashed copies: P/N
  double t2_delta = 0.0;         ///< Technique 2 velocity buffer: 1

  double total() const { return weights + gradients + optimizer_state + stash + t2_delta; }
};

/// `optimizer_state_copies`: SgdMomentum -> 1, AdamW -> 2 (use
/// Optimizer::state_copies()). `t2` adds the delta buffer.
MemoryBreakdown weight_opt_memory(pipeline::Method m, int stages, int microbatches,
                                  int optimizer_state_copies, bool t2);

/// Memory factor relative to the GPipe baseline with the same optimizer
/// (the "1.33X / 1.25X / 2.70X" numbers of Table 2).
double memory_factor_vs_gpipe(pipeline::Method m, int stages, int microbatches,
                              int optimizer_state_copies, bool t2);

/// Time-to-accuracy estimate: epochs divided by throughput (the paper's
/// estimator, Section 4.1). Returns +inf when the target was not reached
/// (epochs_to_target < 0).
double time_to_target(double epochs_to_target, double throughput);

/// Technique 3 amortized throughput: `warmup` synchronous epochs run at
/// the GPipe budget throughput, the rest at full speed
/// (Table 2's PipeMare 0.6X/0.9X entries).
double amortized_throughput(int warmup_epochs, int total_epochs,
                            double sync_throughput = 0.3);

}  // namespace pipemare::hwmodel
