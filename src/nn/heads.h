#pragma once

#include <memory>

#include "src/tensor/tensor.h"

namespace pipemare::nn {

/// Loss + initial gradient + quality metric for one (micro)batch.
struct LossResult {
  double loss = 0.0;           ///< mean loss over the (micro)batch
  tensor::Tensor doutput;      ///< gradient w.r.t. the model output
  double correct = 0.0;        ///< #correct predictions (task-defined)
  double count = 0.0;          ///< #predictions scored
};

/// Task-specific loss head applied after the last module. Kept outside the
/// module list because it consumes labels, which never flow through the
/// pipeline.
class LossHead {
 public:
  virtual ~LossHead() = default;
  virtual LossResult forward_backward(const tensor::Tensor& output,
                                      const tensor::Tensor& target) const = 0;
};

/// Softmax cross-entropy for classification. Output [B, K]; target [B]
/// class ids (as floats). Metric: top-1 correctness.
class ClassificationXent : public LossHead {
 public:
  LossResult forward_backward(const tensor::Tensor& output,
                              const tensor::Tensor& target) const override;
};

/// Per-position label-smoothed cross-entropy for sequence generation.
/// Output [B, S, V]; target [B, S] token ids. Positions whose target id is
/// `pad_id` (if >= 0) are ignored. Metric: token-level accuracy.
class SequenceXent : public LossHead {
 public:
  explicit SequenceXent(double label_smoothing = 0.1, int pad_id = -1);
  LossResult forward_backward(const tensor::Tensor& output,
                              const tensor::Tensor& target) const override;

 private:
  double smoothing_;
  int pad_id_;
};

/// Mean squared error, 0.5 * mean (o - y)^2, for the linear-regression
/// workload of Figure 3(b). Metric: negative loss.
class MseLoss : public LossHead {
 public:
  LossResult forward_backward(const tensor::Tensor& output,
                              const tensor::Tensor& target) const override;
};

}  // namespace pipemare::nn
