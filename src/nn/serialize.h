#pragma once

#include <span>
#include <string>
#include <vector>

namespace pipemare::nn {

/// Minimal binary checkpoint format for flat parameter vectors:
/// magic "PMWT", a uint64 element count, then raw little-endian float32s.
/// Lets users persist trained weights from the examples/benches and reload
/// them for evaluation or fine-tuning.

/// Writes a checkpoint; throws std::runtime_error on I/O failure.
void save_weights(const std::string& path, std::span<const float> weights);

/// Reads a checkpoint; throws std::runtime_error on I/O failure or a
/// malformed file.
std::vector<float> load_weights(const std::string& path);

}  // namespace pipemare::nn
