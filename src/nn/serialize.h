#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace pipemare::nn {

/// Binary checkpoint formats for flat parameter vectors.
///
/// v1 (what save_weights writes): a real header —
///   magic "PMWV" | uint32 format version | uint64 element count |
///   uint64 FNV-1a checksum of the payload bytes | raw little-endian
///   float32 payload
/// so a reader can reject truncated or bit-rotted files instead of
/// silently loading garbage weights.
///
/// v0 (the original headerless format: magic "PMWT" + uint64 count +
/// payload) is still read transparently — load_weights sniffs the magic —
/// so checkpoints written before the header existed keep loading.
inline constexpr std::uint32_t kWeightsFormatVersion = 1;

/// FNV-1a 64-bit over raw bytes (the checkpoint checksum / digest hash).
/// Chain calls by passing the previous result as `seed`.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 14695981039346656037ULL);

/// Writes a v1 checkpoint; throws std::runtime_error on I/O failure.
void save_weights(const std::string& path, std::span<const float> weights);

/// Reads a v0 or v1 checkpoint; throws std::runtime_error on I/O failure
/// or a malformed file (bad magic, unsupported version, truncation,
/// checksum mismatch).
std::vector<float> load_weights(const std::string& path);

/// Stream-level halves of save_weights / load_weights, for containers
/// that embed a weights blob inside a larger file (serve::ModelCheckpoint
/// wraps one in its own header). write_weights emits the v1 blob;
/// read_weights accepts v0 or v1. `what` names the enclosing file in
/// error messages.
void write_weights(std::ostream& out, std::span<const float> weights);
std::vector<float> read_weights(std::istream& in, const std::string& what);

}  // namespace pipemare::nn
