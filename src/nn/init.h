#pragma once

#include <span>

#include "src/util/rng.h"

namespace pipemare::nn {

/// He (Kaiming) normal initialization: N(0, sqrt(2 / fan_in)).
void kaiming_normal(std::span<float> w, int fan_in, util::Rng& rng);

/// Xavier (Glorot) uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(std::span<float> w, int fan_in, int fan_out, util::Rng& rng);

/// Plain normal initialization with the given standard deviation.
void normal_init(std::span<float> w, double stddev, util::Rng& rng);

/// Fill with a constant (used for biases and norm parameters).
void constant_init(std::span<float> w, float value);

}  // namespace pipemare::nn
