#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Fully connected layer y = x W^T + b operating on the trailing dimension.
///
/// Accepts [N, in] or [B, S, in] inputs (higher ranks are flattened to
/// rows). Parameter layout: W in row-major [out, in], then b[out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, bool relu_init = false);

  std::string name() const override { return "Linear"; }
  std::int64_t param_count() const override;
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

  int in_features() const { return in_; }
  int out_features() const { return out_; }

 private:
  int in_;
  int out_;
  bool relu_init_;  ///< use He init (layer followed by a ReLU) instead of Xavier
};

}  // namespace pipemare::nn
