#include "src/nn/embedding.h"

#include <cmath>
#include <stdexcept>

#include "src/nn/init.h"

namespace pipemare::nn {

using tensor::Tensor;

Tensor sinusoidal_positions(int max_len, int d_model) {
  Tensor pos({max_len, d_model});
  for (int s = 0; s < max_len; ++s) {
    for (int j = 0; j < d_model; j += 2) {
      double angle = s / std::pow(10000.0, static_cast<double>(j) / d_model);
      pos.at(s, j) = static_cast<float>(std::sin(angle));
      if (j + 1 < d_model) pos.at(s, j + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return pos;
}

namespace {

Tensor embed_tokens(const Tensor& ids, std::span<const float> table, int vocab,
                    int d_model, int max_len) {
  if (ids.rank() != 2) throw std::invalid_argument("embedding: [B,S] token ids required");
  int b = ids.dim(0), s = ids.dim(1);
  if (s > max_len) throw std::invalid_argument("embedding: sequence longer than max_len");
  Tensor pos = sinusoidal_positions(s, d_model);
  float scale = std::sqrt(static_cast<float>(d_model));
  Tensor out({b, s, d_model});
  for (int bi = 0; bi < b; ++bi) {
    for (int si = 0; si < s; ++si) {
      int tok = static_cast<int>(ids.at(bi, si));
      if (tok < 0 || tok >= vocab) throw std::out_of_range("embedding: token id out of range");
      for (int j = 0; j < d_model; ++j) {
        out.at(bi, si, j) =
            table[static_cast<std::size_t>(tok) * d_model + j] * scale + pos.at(si, j);
      }
    }
  }
  return out;
}

void embed_backward(const Tensor& dy, const Tensor& ids, std::span<float> grad,
                    int d_model) {
  int b = ids.dim(0), s = ids.dim(1);
  float scale = std::sqrt(static_cast<float>(d_model));
  for (int bi = 0; bi < b; ++bi) {
    for (int si = 0; si < s; ++si) {
      int tok = static_cast<int>(ids.at(bi, si));
      for (int j = 0; j < d_model; ++j) {
        grad[static_cast<std::size_t>(tok) * d_model + j] += dy.at(bi, si, j) * scale;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TokenEmbedding
// ---------------------------------------------------------------------------

TokenEmbedding::TokenEmbedding(int vocab, int d_model, int max_len)
    : vocab_(vocab), d_model_(d_model), max_len_(max_len) {
  if (vocab <= 0 || d_model <= 0 || max_len <= 0) {
    throw std::invalid_argument("TokenEmbedding: positive dimensions required");
  }
}

std::int64_t TokenEmbedding::param_count() const {
  return static_cast<std::int64_t>(vocab_) * d_model_;
}

void TokenEmbedding::init_params(std::span<float> w, util::Rng& rng) const {
  normal_init(w, 1.0 / std::sqrt(static_cast<double>(d_model_)), rng);
}

namespace {

/// Shared embedding-layer cost: lookup + sqrt(D) scale + positional add
/// per output element; backward is a scatter-add of the same volume. The
/// table itself is never swept.
ModuleCost embedding_cost(const CostShapes& shapes, int d_model) {
  double out_elems = shapes.out_elems() > 0 ? static_cast<double>(shapes.out_elems())
                                            : static_cast<double>(d_model);
  ModuleCost c;
  c.fwd_flops = 2.0 * out_elems;
  c.bkwd_flops = out_elems;
  c.fwd_bytes = 4.0 * 3.0 * out_elems;
  c.bkwd_bytes = 4.0 * 2.0 * out_elems;
  return c;
}

}  // namespace

ModuleCost TokenEmbedding::cost(const CostShapes& shapes) const {
  return embedding_cost(shapes, d_model_);
}

Flow TokenEmbedding::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  cache.saved = {in.x};  // token ids, needed for the scatter in backward
  Flow out = in;
  out.x = embed_tokens(in.x, w, vocab_, d_model_, max_len_);
  return out;
}

Flow TokenEmbedding::backward(const Flow& dout, std::span<const float> w_bkwd,
                              const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd;
  const Tensor& ids = cache.saved.at(0);
  embed_backward(dout.x, ids, grad, d_model_);
  Flow din = dout;
  din.x = Tensor();  // token ids carry no gradient
  return din;
}

// ---------------------------------------------------------------------------
// DecoderBridge
// ---------------------------------------------------------------------------

DecoderBridge::DecoderBridge(int vocab, int d_model, int max_len)
    : vocab_(vocab), d_model_(d_model), max_len_(max_len) {
  if (vocab <= 0 || d_model <= 0 || max_len <= 0) {
    throw std::invalid_argument("DecoderBridge: positive dimensions required");
  }
}

std::int64_t DecoderBridge::param_count() const {
  return static_cast<std::int64_t>(vocab_) * d_model_;
}

void DecoderBridge::init_params(std::span<float> w, util::Rng& rng) const {
  normal_init(w, 1.0 / std::sqrt(static_cast<double>(d_model_)), rng);
}

ModuleCost DecoderBridge::cost(const CostShapes& shapes) const {
  return embedding_cost(shapes, d_model_);
}

Flow DecoderBridge::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  if (in.aux.empty()) {
    throw std::invalid_argument("DecoderBridge: decoder tokens missing from aux");
  }
  cache.saved = {in.aux};
  Flow out;
  out.copy_bookkeeping(in);  // training/micro/step must survive the bridge
  out.ctx = in.x;  // encoder memory becomes the context
  out.x = embed_tokens(in.aux, w, vocab_, d_model_, max_len_);
  return out;
}

Flow DecoderBridge::backward(const Flow& dout, std::span<const float> w_bkwd,
                             const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd;
  const Tensor& ids = cache.saved.at(0);
  embed_backward(dout.x, ids, grad, d_model_);
  Flow din;
  // The accumulated encoder-memory gradient flows back into the encoder.
  din.x = dout.ctx;
  return din;
}

}  // namespace pipemare::nn
