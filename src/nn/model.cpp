#include "src/nn/model.h"

#include <stdexcept>

namespace pipemare::nn {

ModuleCost Module::cost(const CostShapes& shapes) const {
  // Conservative fallback for modules without a bespoke estimate: touch
  // every input element once and every parameter twice, with backward
  // costing double the forward (the usual dx + dw decomposition).
  auto elems = static_cast<double>(shapes.in_elems());
  auto params = static_cast<double>(param_count());
  ModuleCost c;
  c.fwd_flops = elems + 2.0 * params;
  c.bkwd_flops = 2.0 * c.fwd_flops;
  c.fwd_bytes = 4.0 * (elems + params);
  c.bkwd_bytes = 2.0 * c.fwd_bytes;
  return c;
}

int Model::add(ModulePtr module) {
  offsets_.push_back(total_params_);
  total_params_ += module->param_count();
  modules_.push_back(std::move(module));
  return static_cast<int>(modules_.size()) - 1;
}

std::span<const float> Model::module_params(int i, std::span<const float> flat) const {
  auto idx = static_cast<std::size_t>(i);
  return flat.subspan(static_cast<std::size_t>(offsets_.at(idx)),
                      static_cast<std::size_t>(modules_[idx]->param_count()));
}

std::span<float> Model::module_params(int i, std::span<float> flat) const {
  auto idx = static_cast<std::size_t>(i);
  return flat.subspan(static_cast<std::size_t>(offsets_.at(idx)),
                      static_cast<std::size_t>(modules_[idx]->param_count()));
}

void Model::init_params(std::span<float> flat, util::Rng& rng) const {
  if (static_cast<std::int64_t>(flat.size()) != total_params_) {
    throw std::invalid_argument("Model::init_params: flat size mismatch");
  }
  for (int i = 0; i < num_modules(); ++i) {
    if (modules_[static_cast<std::size_t>(i)]->param_count() == 0) continue;
    auto view = module_params(i, flat);
    modules_[static_cast<std::size_t>(i)]->init_params(view, rng);
  }
}

std::vector<WeightUnit> Model::weight_units(bool split_bias) const {
  std::vector<WeightUnit> units;
  for (int i = 0; i < num_modules(); ++i) {
    std::int64_t off = offsets_[static_cast<std::size_t>(i)];
    for (std::int64_t sz : modules_[static_cast<std::size_t>(i)]->param_unit_sizes(split_bias)) {
      units.push_back({i, off, sz});
      off += sz;
    }
  }
  return units;
}

Flow Model::forward_range(int first, int last, Flow in, std::span<const float> params,
                          std::vector<Cache>& caches) const {
  if (first < 0 || last > num_modules() || first > last) {
    throw std::out_of_range("Model::forward_range: bad range");
  }
  for (int i = first; i < last; ++i) {
    auto& cache = caches.at(static_cast<std::size_t>(i));
    cache.clear();
    in = modules_[static_cast<std::size_t>(i)]->forward(in, module_params(i, params), cache);
  }
  return in;
}

Flow Model::backward_range(int first, int last, Flow dout, std::span<const float> params,
                           const std::vector<Cache>& caches, std::span<float> grad) const {
  if (first < 0 || last > num_modules() || first > last) {
    throw std::out_of_range("Model::backward_range: bad range");
  }
  for (int i = last - 1; i >= first; --i) {
    dout = modules_[static_cast<std::size_t>(i)]->backward(
        dout, module_params(i, params), caches.at(static_cast<std::size_t>(i)),
        module_params(i, grad));
  }
  return dout;
}

Flow Model::forward(Flow in, std::span<const float> params, std::vector<Cache>& caches) const {
  return forward_range(0, num_modules(), std::move(in), params, caches);
}

Flow Model::backward(Flow dout, std::span<const float> params,
                     const std::vector<Cache>& caches, std::span<float> grad) const {
  return backward_range(0, num_modules(), std::move(dout), params, caches, grad);
}

}  // namespace pipemare::nn
