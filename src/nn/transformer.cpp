#include "src/nn/transformer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/dropout.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"
#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

namespace {

void maybe_add_dropout(Model& model, const TransformerConfig& cfg) {
  if (cfg.dropout > 0.0) {
    // Seed each dropout instance differently but deterministically.
    model.add(std::make_unique<Dropout>(
        cfg.dropout, 0x9e3779b9ULL + static_cast<std::uint64_t>(model.num_modules())));
  }
}

void add_ffn_sublayer(Model& model, const TransformerConfig& cfg) {
  model.add(std::make_unique<ResidualOpen>());
  model.add(std::make_unique<Linear>(cfg.d_model, cfg.ffn_hidden, /*relu_init=*/true));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(cfg.ffn_hidden, cfg.d_model));
  maybe_add_dropout(model, cfg);
  model.add(std::make_unique<ResidualClose>());
  model.add(std::make_unique<LayerNorm>(cfg.d_model));
}

void add_attn_sublayer(Model& model, const TransformerConfig& cfg,
                       MultiHeadAttention::Kind kind) {
  model.add(std::make_unique<ResidualOpen>());
  model.add(std::make_unique<MultiHeadAttention>(cfg.d_model, cfg.heads, kind));
  maybe_add_dropout(model, cfg);
  model.add(std::make_unique<ResidualClose>());
  model.add(std::make_unique<LayerNorm>(cfg.d_model));
}

}  // namespace

Model make_transformer(const TransformerConfig& cfg) {
  Model model;
  model.add(std::make_unique<TokenEmbedding>(cfg.vocab, cfg.d_model, cfg.max_len));
  for (int l = 0; l < cfg.enc_layers; ++l) {
    add_attn_sublayer(model, cfg, MultiHeadAttention::Kind::SelfAttention);
    add_ffn_sublayer(model, cfg);
  }
  model.add(std::make_unique<DecoderBridge>(cfg.vocab, cfg.d_model, cfg.max_len));
  for (int l = 0; l < cfg.dec_layers; ++l) {
    add_attn_sublayer(model, cfg, MultiHeadAttention::Kind::CausalSelfAttention);
    add_attn_sublayer(model, cfg, MultiHeadAttention::Kind::CrossAttention);
    add_ffn_sublayer(model, cfg);
  }
  model.add(std::make_unique<Linear>(cfg.d_model, cfg.vocab));
  return model;
}

namespace {

/// Runs a full forward pass for the given src/tgt-in batch and returns the
/// logits at the last target position, [B, V].
Tensor last_position_logits(const Model& model, std::span<const float> params,
                            const Tensor& src, const Tensor& tgt_in) {
  Flow flow;
  flow.x = src;
  flow.aux = tgt_in;
  auto caches = model.make_caches();
  Flow out = model.forward(std::move(flow), params, caches);
  int b = out.x.dim(0), s = out.x.dim(1), v = out.x.dim(2);
  Tensor logits({b, v});
  for (int bi = 0; bi < b; ++bi)
    for (int j = 0; j < v; ++j) logits.at(bi, j) = out.x.at(bi, s - 1, j);
  return logits;
}

std::vector<int> strip_eos(const std::vector<int>& toks, int eos) {
  std::vector<int> out;
  for (int t : toks) {
    if (t == eos) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace

std::vector<std::vector<int>> greedy_decode(const Model& model,
                                            std::span<const float> params,
                                            const Tensor& src, int bos, int eos,
                                            int max_steps) {
  int b = src.dim(0);
  std::vector<std::vector<int>> hyp(static_cast<std::size_t>(b), {bos});
  std::vector<bool> done(static_cast<std::size_t>(b), false);
  for (int step = 0; step < max_steps; ++step) {
    int cur = static_cast<int>(hyp[0].size());
    Tensor tgt_in({b, cur});
    for (int bi = 0; bi < b; ++bi)
      for (int t = 0; t < cur; ++t)
        tgt_in.at(bi, t) = static_cast<float>(hyp[static_cast<std::size_t>(bi)][static_cast<std::size_t>(t)]);
    Tensor logits = last_position_logits(model, params, src, tgt_in);
    bool all_done = true;
    for (int bi = 0; bi < b; ++bi) {
      int best = 0;
      for (int j = 1; j < logits.dim(1); ++j) {
        if (logits.at(bi, j) > logits.at(bi, best)) best = j;
      }
      int tok = done[static_cast<std::size_t>(bi)] ? eos : best;
      hyp[static_cast<std::size_t>(bi)].push_back(tok);
      if (tok == eos) done[static_cast<std::size_t>(bi)] = true;
      all_done = all_done && done[static_cast<std::size_t>(bi)];
    }
    if (all_done) break;
  }
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(b));
  for (auto& h : hyp) {
    out.push_back(strip_eos({h.begin() + 1, h.end()}, eos));
  }
  return out;
}

std::vector<std::vector<int>> beam_decode(const Model& model,
                                          std::span<const float> params,
                                          const Tensor& src, int bos, int eos,
                                          int max_steps, int beam_width,
                                          double length_penalty) {
  int b = src.dim(0), s = src.dim(1);
  std::vector<std::vector<int>> results;
  results.reserve(static_cast<std::size_t>(b));

  struct Hypothesis {
    std::vector<int> tokens;
    double logp = 0.0;
    bool done = false;
    double score(double lp) const {
      auto len = static_cast<double>(std::max<std::size_t>(tokens.size() - 1, 1));
      return logp / std::pow(len, lp);
    }
  };

  for (int bi = 0; bi < b; ++bi) {
    std::vector<Hypothesis> beam = {{{bos}, 0.0, false}};
    for (int step = 0; step < max_steps; ++step) {
      // Collect live hypotheses (finished ones pass through unchanged).
      std::vector<int> live;
      for (int h = 0; h < static_cast<int>(beam.size()); ++h) {
        if (!beam[static_cast<std::size_t>(h)].done) live.push_back(h);
      }
      if (live.empty()) break;
      int cur = static_cast<int>(beam[static_cast<std::size_t>(live[0])].tokens.size());
      int nb = static_cast<int>(live.size());
      Tensor src_rep({nb, s});
      Tensor tgt_in({nb, cur});
      for (int r = 0; r < nb; ++r) {
        const auto& hy = beam[static_cast<std::size_t>(live[static_cast<std::size_t>(r)])];
        for (int j = 0; j < s; ++j) src_rep.at(r, j) = src.at(bi, j);
        for (int t = 0; t < cur; ++t)
          tgt_in.at(r, t) = static_cast<float>(hy.tokens[static_cast<std::size_t>(t)]);
      }
      Tensor logits = last_position_logits(model, params, src_rep, tgt_in);
      Tensor logp = tensor::log_softmax_rows(logits);

      std::vector<Hypothesis> candidates;
      for (auto& hy : beam) {
        if (hy.done) candidates.push_back(hy);
      }
      for (int r = 0; r < nb; ++r) {
        const auto& hy = beam[static_cast<std::size_t>(live[static_cast<std::size_t>(r)])];
        for (int j = 0; j < logp.dim(1); ++j) {
          Hypothesis next = hy;
          next.tokens.push_back(j);
          next.logp += logp.at(r, j);
          next.done = (j == eos);
          candidates.push_back(std::move(next));
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](const Hypothesis& a, const Hypothesis& c) {
                  return a.score(length_penalty) > c.score(length_penalty);
                });
      candidates.resize(std::min<std::size_t>(candidates.size(),
                                              static_cast<std::size_t>(beam_width)));
      beam = std::move(candidates);
      bool all_done = true;
      for (const auto& hy : beam) all_done = all_done && hy.done;
      if (all_done) break;
    }
    const auto& best = *std::max_element(
        beam.begin(), beam.end(), [&](const Hypothesis& a, const Hypothesis& c) {
          return a.score(length_penalty) < c.score(length_penalty);
        });
    results.push_back(strip_eos({best.tokens.begin() + 1, best.tokens.end()}, eos));
  }
  return results;
}

}  // namespace pipemare::nn
