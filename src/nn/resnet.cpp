#include "src/nn/resnet.h"

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"

namespace pipemare::nn {

ResNetConfig ResNetConfig::deep() {
  ResNetConfig cfg;
  cfg.base_channels = 8;
  cfg.blocks_per_group = {3, 4, 3};
  return cfg;
}

namespace {
ModulePtr make_norm(const ResNetConfig& cfg, int channels) {
  if (cfg.group_norm) return std::make_unique<GroupNorm2d>(channels, cfg.gn_groups);
  return std::make_unique<BatchNorm2d>(channels);
}
}  // namespace

Model make_resnet(const ResNetConfig& cfg) {
  Model model;
  int channels = cfg.base_channels;
  model.add(std::make_unique<Conv2d>(cfg.in_channels, channels, 3, 1, 1));
  model.add(make_norm(cfg, channels));
  model.add(std::make_unique<ReLU>());
  for (std::size_t g = 0; g < cfg.blocks_per_group.size(); ++g) {
    int out_channels = g == 0 ? channels : channels * 2;
    for (int blk = 0; blk < cfg.blocks_per_group[g]; ++blk) {
      bool downsample = g > 0 && blk == 0;
      int stride = downsample ? 2 : 1;
      int in_ch = blk == 0 ? channels : out_channels;
      model.add(std::make_unique<ResidualOpen>());
      model.add(std::make_unique<Conv2d>(in_ch, out_channels, 3, stride, 1));
      model.add(make_norm(cfg, out_channels));
      model.add(std::make_unique<ReLU>());
      model.add(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1));
      model.add(make_norm(cfg, out_channels));
      if (downsample || in_ch != out_channels) {
        model.add(std::make_unique<ResidualClose>(in_ch, out_channels, stride));
      } else {
        model.add(std::make_unique<ResidualClose>());
      }
      model.add(std::make_unique<ReLU>());
    }
    channels = out_channels;
  }
  model.add(std::make_unique<GlobalAvgPool>());
  model.add(std::make_unique<Linear>(channels, cfg.num_classes));
  return model;
}

}  // namespace pipemare::nn
