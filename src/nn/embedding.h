#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Fixed sinusoidal positional encoding table [max_len, d_model]
/// (Vaswani et al.). Shared by the embedding modules; carries no params.
tensor::Tensor sinusoidal_positions(int max_len, int d_model);

/// Token embedding: token ids (stored as floats in `x` with shape [B,S])
/// are mapped to `E[token] * sqrt(D) + pos[s]`. Parameters: E[V, D].
/// This is the encoder-side (source) embedding.
class TokenEmbedding : public Module {
 public:
  TokenEmbedding(int vocab, int d_model, int max_len);

  std::string name() const override { return "TokenEmbedding"; }
  std::int64_t param_count() const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int vocab_;
  int d_model_;
  int max_len_;
};

/// Encoder/decoder bridge. Placed between the encoder stack and the
/// decoder stack in the sequential module list, it:
///  - moves the encoder output from `x` into `ctx` (the encoder memory all
///    later cross-attention stages read), and
///  - embeds the decoder input tokens riding in `aux` into the new `x`.
/// Parameters: the target-side embedding E_dec[V, D].
/// In the backward pass the accumulated `ctx` gradient becomes the
/// gradient flowing back into the encoder stack.
class DecoderBridge : public Module {
 public:
  DecoderBridge(int vocab, int d_model, int max_len);

  std::string name() const override { return "DecoderBridge"; }
  FlowEffects flow_effects() const override { return {.produces_ctx = true}; }
  std::int64_t param_count() const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int vocab_;
  int d_model_;
  int max_len_;
};

}  // namespace pipemare::nn
