#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Elementwise rectified linear unit (parameter-free).
class ReLU : public Module {
 public:
  std::string name() const override { return "ReLU"; }
  ModuleCost cost(const CostShapes& shapes) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;
};

/// 2x2 stride-2 max pooling over BCHW tensors (parameter-free).
class MaxPool2x2 : public Module {
 public:
  std::string name() const override { return "MaxPool2x2"; }
  ModuleCost cost(const CostShapes& shapes) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;
};

/// Global average pooling BCHW -> [B, C] (parameter-free). Used as the
/// penultimate layer of the ResNet-style classifier.
class GlobalAvgPool : public Module {
 public:
  std::string name() const override { return "GlobalAvgPool"; }
  ModuleCost cost(const CostShapes& shapes) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;
};

}  // namespace pipemare::nn
