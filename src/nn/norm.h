#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Batch normalization over BCHW tensors (statistics per channel across
/// batch and spatial dimensions). Parameter layout: gamma[C], beta[C].
///
/// Statistics are always computed from the current (micro)batch — the same
/// behaviour the paper relies on when it picks microbatch sizes "as small
/// as possible without causing issues for batch normalization". Evaluation
/// also uses batch statistics (documented substitution: no running-stat
/// state, because modules are stateless for weight versioning).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, double eps = 1e-5);

  std::string name() const override { return "BatchNorm2d"; }
  std::int64_t param_count() const override { return 2LL * channels_; }
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int channels_;
  double eps_;
};

/// Group normalization over BCHW tensors (Wu & He, cited by the paper as
/// the remedy for batch-statistics degradation at small microbatches):
/// statistics are computed per sample over channel groups, so the
/// microbatch size can shrink to 1 — which minimizes both activation
/// memory and the pipeline delay tau = (2(P-i)+1)/N.
/// Parameter layout: gamma[C], beta[C].
class GroupNorm2d : public Module {
 public:
  GroupNorm2d(int channels, int groups, double eps = 1e-5);

  std::string name() const override { return "GroupNorm2d"; }
  std::int64_t param_count() const override { return 2LL * channels_; }
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int channels_;
  int groups_;
  double eps_;
};

/// Layer normalization over the trailing dimension. Parameter layout:
/// gamma[D], beta[D].
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int features, double eps = 1e-5);

  std::string name() const override { return "LayerNorm"; }
  std::int64_t param_count() const override { return 2LL * features_; }
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int features_;
  double eps_;
};

}  // namespace pipemare::nn
