#include "src/nn/norm.h"

#include <cmath>
#include <stdexcept>

#include "src/nn/init.h"

namespace pipemare::nn {

using tensor::Tensor;

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int channels, double eps) : channels_(channels), eps_(eps) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels > 0 required");
}

std::vector<std::int64_t> BatchNorm2d::param_unit_sizes(bool split_bias) const {
  if (!split_bias) return {param_count()};
  return {channels_, channels_};
}

namespace {

/// Shared normalization-layer cost: mean/var reduction, normalize, affine
/// (~8 flops per element forward), with the usual 2x backward.
ModuleCost norm_cost(const CostShapes& shapes, std::int64_t params) {
  auto elems = static_cast<double>(shapes.in_elems());
  if (elems <= 0.0) elems = static_cast<double>(params);
  ModuleCost c;
  c.fwd_flops = 8.0 * elems;
  c.bkwd_flops = 16.0 * elems;
  c.fwd_bytes = 4.0 * (2.0 * elems + static_cast<double>(params));
  c.bkwd_bytes = 2.0 * c.fwd_bytes;
  return c;
}

}  // namespace

ModuleCost BatchNorm2d::cost(const CostShapes& shapes) const {
  return norm_cost(shapes, param_count());
}

void BatchNorm2d::init_params(std::span<float> w, util::Rng& rng) const {
  (void)rng;
  constant_init(w.subspan(0, static_cast<std::size_t>(channels_)), 1.0F);
  constant_init(w.subspan(static_cast<std::size_t>(channels_)), 0.0F);
}

Flow BatchNorm2d::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  const Tensor& x = in.x;
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: BCHW input with matching channels required");
  }
  int b = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  auto n = static_cast<float>(b * h * wd);
  Tensor xhat(x.shape());
  Tensor inv_std({c});
  Tensor y(x.shape());
  for (int ci = 0; ci < c; ++ci) {
    double s = 0.0;
    for (int bi = 0; bi < b; ++bi)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < wd; ++ix) s += x.at(bi, ci, iy, ix);
    double mu = s / n;
    double v = 0.0;
    for (int bi = 0; bi < b; ++bi)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < wd; ++ix) {
          double d = x.at(bi, ci, iy, ix) - mu;
          v += d * d;
        }
    double istd = 1.0 / std::sqrt(v / n + eps_);
    inv_std.at(ci) = static_cast<float>(istd);
    float gamma = w[static_cast<std::size_t>(ci)];
    float beta = w[static_cast<std::size_t>(channels_ + ci)];
    for (int bi = 0; bi < b; ++bi)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < wd; ++ix) {
          auto xh = static_cast<float>((x.at(bi, ci, iy, ix) - mu) * istd);
          xhat.at(bi, ci, iy, ix) = xh;
          y.at(bi, ci, iy, ix) = gamma * xh + beta;
        }
  }
  cache.saved = {xhat, inv_std};
  Flow out = in;
  out.x = std::move(y);
  return out;
}

Flow BatchNorm2d::backward(const Flow& dout, std::span<const float> w_bkwd,
                           const Cache& cache, std::span<float> grad) const {
  const Tensor& xhat = cache.saved.at(0);
  const Tensor& inv_std = cache.saved.at(1);
  const Tensor& dy = dout.x;
  int b = dy.dim(0), c = dy.dim(1), h = dy.dim(2), wd = dy.dim(3);
  auto n = static_cast<double>(b * h * wd);
  Tensor dx(dy.shape());
  for (int ci = 0; ci < c; ++ci) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int bi = 0; bi < b; ++bi)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < wd; ++ix) {
          double g = dy.at(bi, ci, iy, ix);
          sum_dy += g;
          sum_dy_xhat += g * xhat.at(bi, ci, iy, ix);
        }
    grad[static_cast<std::size_t>(ci)] += static_cast<float>(sum_dy_xhat);
    grad[static_cast<std::size_t>(channels_ + ci)] += static_cast<float>(sum_dy);
    // Input gradient evaluated with the backward-pass gamma.
    double gamma_b = w_bkwd[static_cast<std::size_t>(ci)];
    double k = gamma_b * inv_std.at(ci);
    double mean_dy = sum_dy / n;
    double mean_dy_xhat = sum_dy_xhat / n;
    for (int bi = 0; bi < b; ++bi)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < wd; ++ix) {
          double g = dy.at(bi, ci, iy, ix);
          dx.at(bi, ci, iy, ix) = static_cast<float>(
              k * (g - mean_dy - xhat.at(bi, ci, iy, ix) * mean_dy_xhat));
        }
  }
  Flow din = dout;
  din.x = std::move(dx);
  return din;
}

// ---------------------------------------------------------------------------
// GroupNorm2d
// ---------------------------------------------------------------------------

GroupNorm2d::GroupNorm2d(int channels, int groups, double eps)
    : channels_(channels), groups_(groups), eps_(eps) {
  if (channels <= 0 || groups <= 0 || channels % groups != 0) {
    throw std::invalid_argument("GroupNorm2d: channels divisible by groups required");
  }
}

std::vector<std::int64_t> GroupNorm2d::param_unit_sizes(bool split_bias) const {
  if (!split_bias) return {param_count()};
  return {channels_, channels_};
}

ModuleCost GroupNorm2d::cost(const CostShapes& shapes) const {
  return norm_cost(shapes, param_count());
}

void GroupNorm2d::init_params(std::span<float> w, util::Rng& rng) const {
  (void)rng;
  constant_init(w.subspan(0, static_cast<std::size_t>(channels_)), 1.0F);
  constant_init(w.subspan(static_cast<std::size_t>(channels_)), 0.0F);
}

Flow GroupNorm2d::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  const Tensor& x = in.x;
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("GroupNorm2d: BCHW input with matching channels required");
  }
  int b = x.dim(0), h = x.dim(2), wd = x.dim(3);
  int cpg = channels_ / groups_;  // channels per group
  auto n = static_cast<double>(cpg * h * wd);
  Tensor xhat(x.shape());
  Tensor inv_std({b, groups_});
  Tensor y(x.shape());
  for (int bi = 0; bi < b; ++bi) {
    for (int g = 0; g < groups_; ++g) {
      double s = 0.0;
      for (int c = g * cpg; c < (g + 1) * cpg; ++c)
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < wd; ++ix) s += x.at(bi, c, iy, ix);
      double mu = s / n;
      double v = 0.0;
      for (int c = g * cpg; c < (g + 1) * cpg; ++c)
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < wd; ++ix) {
            double d = x.at(bi, c, iy, ix) - mu;
            v += d * d;
          }
      double istd = 1.0 / std::sqrt(v / n + eps_);
      inv_std.at(bi, g) = static_cast<float>(istd);
      for (int c = g * cpg; c < (g + 1) * cpg; ++c) {
        float gamma = w[static_cast<std::size_t>(c)];
        float beta = w[static_cast<std::size_t>(channels_ + c)];
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < wd; ++ix) {
            auto xh = static_cast<float>((x.at(bi, c, iy, ix) - mu) * istd);
            xhat.at(bi, c, iy, ix) = xh;
            y.at(bi, c, iy, ix) = gamma * xh + beta;
          }
      }
    }
  }
  cache.saved = {xhat, inv_std};
  Flow out = in;
  out.x = std::move(y);
  return out;
}

Flow GroupNorm2d::backward(const Flow& dout, std::span<const float> w_bkwd,
                           const Cache& cache, std::span<float> grad) const {
  const Tensor& xhat = cache.saved.at(0);
  const Tensor& inv_std = cache.saved.at(1);
  const Tensor& dy = dout.x;
  int b = dy.dim(0), h = dy.dim(2), wd = dy.dim(3);
  int cpg = channels_ / groups_;
  auto n = static_cast<double>(cpg * h * wd);
  Tensor dx(dy.shape());
  for (int bi = 0; bi < b; ++bi) {
    for (int g = 0; g < groups_; ++g) {
      // g_elem = dy * gamma_bkwd; normalization backward needs its group
      // means (against 1 and xhat).
      double mean_g = 0.0, mean_g_xhat = 0.0;
      for (int c = g * cpg; c < (g + 1) * cpg; ++c) {
        double gamma_b = w_bkwd[static_cast<std::size_t>(c)];
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < wd; ++ix) {
            double gv = dy.at(bi, c, iy, ix);
            grad[static_cast<std::size_t>(c)] +=
                static_cast<float>(gv * xhat.at(bi, c, iy, ix));
            grad[static_cast<std::size_t>(channels_ + c)] += static_cast<float>(gv);
            mean_g += gv * gamma_b;
            mean_g_xhat += gv * gamma_b * xhat.at(bi, c, iy, ix);
          }
      }
      mean_g /= n;
      mean_g_xhat /= n;
      double istd = inv_std.at(bi, g);
      for (int c = g * cpg; c < (g + 1) * cpg; ++c) {
        double gamma_b = w_bkwd[static_cast<std::size_t>(c)];
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < wd; ++ix) {
            double gv = dy.at(bi, c, iy, ix) * gamma_b;
            dx.at(bi, c, iy, ix) = static_cast<float>(
                istd * (gv - mean_g - xhat.at(bi, c, iy, ix) * mean_g_xhat));
          }
      }
    }
  }
  Flow din = dout;
  din.x = std::move(dx);
  return din;
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(int features, double eps) : features_(features), eps_(eps) {
  if (features <= 0) throw std::invalid_argument("LayerNorm: features > 0 required");
}

std::vector<std::int64_t> LayerNorm::param_unit_sizes(bool split_bias) const {
  if (!split_bias) return {param_count()};
  return {features_, features_};
}

ModuleCost LayerNorm::cost(const CostShapes& shapes) const {
  return norm_cost(shapes, param_count());
}

void LayerNorm::init_params(std::span<float> w, util::Rng& rng) const {
  (void)rng;
  constant_init(w.subspan(0, static_cast<std::size_t>(features_)), 1.0F);
  constant_init(w.subspan(static_cast<std::size_t>(features_)), 0.0F);
}

Flow LayerNorm::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  const Tensor& x = in.x;
  if (x.dim(x.rank() - 1) != features_) {
    throw std::invalid_argument("LayerNorm: trailing dimension mismatch");
  }
  auto rows = static_cast<int>(x.size() / features_);
  Tensor xhat(x.shape());
  Tensor inv_std({rows});
  Tensor y(x.shape());
  const float* px = x.data();
  float* ph = xhat.data();
  float* py = y.data();
  for (int r = 0; r < rows; ++r) {
    const float* xr = px + static_cast<std::size_t>(r) * features_;
    double mu = 0.0;
    for (int j = 0; j < features_; ++j) mu += xr[j];
    mu /= features_;
    double v = 0.0;
    for (int j = 0; j < features_; ++j) v += (xr[j] - mu) * (xr[j] - mu);
    double istd = 1.0 / std::sqrt(v / features_ + eps_);
    inv_std.at(r) = static_cast<float>(istd);
    for (int j = 0; j < features_; ++j) {
      auto xh = static_cast<float>((xr[j] - mu) * istd);
      ph[static_cast<std::size_t>(r) * features_ + j] = xh;
      py[static_cast<std::size_t>(r) * features_ + j] =
          w[static_cast<std::size_t>(j)] * xh + w[static_cast<std::size_t>(features_ + j)];
    }
  }
  cache.saved = {xhat, inv_std};
  Flow out = in;
  out.x = std::move(y);
  return out;
}

Flow LayerNorm::backward(const Flow& dout, std::span<const float> w_bkwd,
                         const Cache& cache, std::span<float> grad) const {
  const Tensor& xhat = cache.saved.at(0);
  const Tensor& inv_std = cache.saved.at(1);
  const Tensor& dy = dout.x;
  auto rows = static_cast<int>(dy.size() / features_);
  Tensor dx(dy.shape());
  const float* pdy = dy.data();
  const float* ph = xhat.data();
  float* pdx = dx.data();
  for (int r = 0; r < rows; ++r) {
    const float* dyr = pdy + static_cast<std::size_t>(r) * features_;
    const float* xhr = ph + static_cast<std::size_t>(r) * features_;
    // g = dy * gamma_bkwd elementwise; dgamma/dbeta use cached activations.
    double mean_g = 0.0, mean_g_xhat = 0.0;
    for (int j = 0; j < features_; ++j) {
      grad[static_cast<std::size_t>(j)] += dyr[j] * xhr[j];
      grad[static_cast<std::size_t>(features_ + j)] += dyr[j];
      double g = static_cast<double>(dyr[j]) * w_bkwd[static_cast<std::size_t>(j)];
      mean_g += g;
      mean_g_xhat += g * xhr[j];
    }
    mean_g /= features_;
    mean_g_xhat /= features_;
    double istd = inv_std.at(r);
    for (int j = 0; j < features_; ++j) {
      double g = static_cast<double>(dyr[j]) * w_bkwd[static_cast<std::size_t>(j)];
      pdx[static_cast<std::size_t>(r) * features_ + j] =
          static_cast<float>(istd * (g - mean_g - xhr[j] * mean_g_xhat));
    }
  }
  Flow din = dout;
  din.x = std::move(dx);
  return din;
}

}  // namespace pipemare::nn
