#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/nn/module.h"

namespace pipemare::nn {

/// A weight unit: the granularity at which the paper assigns model weights
/// to pipeline stages ("traverse model weights according to their
/// topological order ... divide these model weights evenly into P stages").
struct WeightUnit {
  int module = 0;           ///< owning module index
  std::int64_t offset = 0;  ///< offset into the flat parameter vector
  std::int64_t size = 0;    ///< number of parameters in the unit
};

/// An ordered list of modules with a flat parameter layout.
///
/// The Model is deliberately *stateless about weights*: every forward /
/// backward call receives the flat parameter vector to use, which is what
/// allows the pipeline engine to feed different weight versions to the
/// forward and backward passes of the same microbatch (the heart of the
/// paper's asynchronous execution model).
class Model {
 public:
  Model() = default;

  /// Appends a module; returns its index.
  int add(ModulePtr module);

  int num_modules() const { return static_cast<int>(modules_.size()); }
  const Module& module(int i) const { return *modules_.at(static_cast<std::size_t>(i)); }

  /// Total flat parameter count.
  std::int64_t param_count() const { return total_params_; }

  /// Parameter slice belonging to module `i`.
  std::span<const float> module_params(int i, std::span<const float> flat) const;
  std::span<float> module_params(int i, std::span<float> flat) const;

  /// Initializes every module's parameters in the flat vector.
  void init_params(std::span<float> flat, util::Rng& rng) const;

  /// Weight units in topological order. With `split_bias`, weight matrices
  /// and biases become separate units (the paper's "2x stages" regime).
  std::vector<WeightUnit> weight_units(bool split_bias) const;

  /// Runs modules [first, last) forward. `caches` must have one Cache per
  /// module in the model; only the range's entries are written.
  Flow forward_range(int first, int last, Flow in, std::span<const float> params,
                     std::vector<Cache>& caches) const;

  /// Runs modules [first, last) backward (in reverse), accumulating
  /// parameter gradients into `grad` (same layout as the flat params).
  Flow backward_range(int first, int last, Flow dout, std::span<const float> params,
                      const std::vector<Cache>& caches, std::span<float> grad) const;

  /// Whole-model convenience wrappers.
  Flow forward(Flow in, std::span<const float> params, std::vector<Cache>& caches) const;
  Flow backward(Flow dout, std::span<const float> params,
                const std::vector<Cache>& caches, std::span<float> grad) const;

  /// Fresh cache vector sized for this model.
  std::vector<Cache> make_caches() const { return std::vector<Cache>(modules_.size()); }

 private:
  std::vector<ModulePtr> modules_;
  std::vector<std::int64_t> offsets_;  ///< per-module offset into flat params
  std::int64_t total_params_ = 0;
};

}  // namespace pipemare::nn
