#pragma once

#include "src/nn/conv2d.h"
#include "src/nn/module.h"

namespace pipemare::nn {

/// Opens a residual shortcut: copies the current activation into the
/// `skip` channel of the Flow. Parameter-free. Exactly one shortcut may be
/// open at a time; `ResidualClose` consumes it. Decomposing blocks this way
/// keeps every weight unit its own module, which is what lets the stage
/// partitioner cut *inside* residual blocks (the paper's fine-grained
/// pipeline: one stage per model weight).
class ResidualOpen : public Module {
 public:
  std::string name() const override { return "ResidualOpen"; }
  FlowEffects flow_effects() const override { return {.produces_skip = true}; }
  ModuleCost cost(const CostShapes& shapes) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;
};

/// Closes a residual shortcut: adds the saved skip tensor into the main
/// activation. When the main path changed shape (channel growth and/or
/// stride), a 1x1 projection convolution is applied to the skip path and
/// this module owns its parameters.
class ResidualClose : public Module {
 public:
  /// Identity shortcut.
  ResidualClose();

  /// Projection shortcut: 1x1 conv with the given channel change / stride.
  ResidualClose(int in_channels, int out_channels, int stride);

  std::string name() const override { return "ResidualClose"; }
  FlowEffects flow_effects() const override { return {.consumes_skip = true}; }
  std::int64_t param_count() const override;
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  std::unique_ptr<Conv2d> projection_;  ///< null for the identity shortcut
};

}  // namespace pipemare::nn
