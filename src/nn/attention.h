#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Multi-head scaled dot-product attention.
///
/// Variants:
///  - SelfAttention: queries/keys/values from `x` (encoder).
///  - CausalSelfAttention: same, with the upper-triangular mask (decoder).
///  - CrossAttention: queries from `x`, keys/values from `ctx` (the encoder
///    memory placed there by `DecoderBridge`); its backward pass
///    accumulates gradient into the `ctx` channel of the Flow.
///
/// Parameter layout (matching `Linear`): Wq[D,D],bq[D], Wk,bk, Wv,bv,
/// Wo,bo. Each projection (weight+bias) is one weight unit, so a single
/// attention module contributes four pipeline-partitionable units.
class MultiHeadAttention : public Module {
 public:
  enum class Kind { SelfAttention, CausalSelfAttention, CrossAttention };

  MultiHeadAttention(int d_model, int num_heads, Kind kind);

  std::string name() const override;
  FlowEffects flow_effects() const override {
    return {.consumes_ctx = kind_ == Kind::CrossAttention};
  }
  std::int64_t param_count() const override;
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  int d_model_;
  int heads_;
  Kind kind_;
};

}  // namespace pipemare::nn
