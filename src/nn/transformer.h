#pragma once

#include "src/nn/model.h"

namespace pipemare::nn {

/// Configuration of the encoder-decoder Transformer (the paper's 12-layer
/// IWSLT/WMT model scaled to the synthetic translation task).
struct TransformerConfig {
  int vocab = 32;
  int d_model = 32;
  int heads = 4;
  int enc_layers = 2;
  int dec_layers = 2;
  int ffn_hidden = 64;
  int max_len = 32;
  /// Sublayer-output dropout, applied before each residual add
  /// (the fairseq recipe the paper inherits uses 0.3 / 0.1; 0 disables).
  double dropout = 0.0;
};

/// Builds the sequential module list:
/// TokenEmbedding; enc_layers x [self-attn sublayer, FFN sublayer];
/// DecoderBridge; dec_layers x [causal self-attn, cross-attn, FFN];
/// final vocabulary projection. Sublayers use post-LN residuals
/// (x = LN(x + sublayer(x))), matching the fairseq IWSLT recipe.
Model make_transformer(const TransformerConfig& cfg);

/// Greedy autoregressive decoding. `src` is [B, S] token ids; returns B
/// decoded sequences (without BOS, cut at EOS or `max_steps`).
std::vector<std::vector<int>> greedy_decode(const Model& model,
                                            std::span<const float> params,
                                            const tensor::Tensor& src, int bos, int eos,
                                            int max_steps);

/// Beam-search decoding with length-normalized log-probabilities (the
/// paper evaluates BLEU with beam width 5).
std::vector<std::vector<int>> beam_decode(const Model& model,
                                          std::span<const float> params,
                                          const tensor::Tensor& src, int bos, int eos,
                                          int max_steps, int beam_width = 5,
                                          double length_penalty = 1.0);

}  // namespace pipemare::nn
