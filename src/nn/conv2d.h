#pragma once

#include "src/nn/module.h"
#include "src/tensor/conv.h"

namespace pipemare::nn {

/// 2-D convolution on BCHW tensors implemented as im2col + matmul.
///
/// Parameter layout: W row-major [out_channels, in_channels * k * k],
/// then b[out_channels].
class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding);

  std::string name() const override { return "Conv2d"; }
  std::int64_t param_count() const override;
  std::vector<std::int64_t> param_unit_sizes(bool split_bias) const override;
  ModuleCost cost(const CostShapes& shapes) const override;
  void init_params(std::span<float> w, util::Rng& rng) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

  const tensor::ConvSpec& spec() const { return spec_; }

 private:
  tensor::ConvSpec spec_;
};

}  // namespace pipemare::nn
