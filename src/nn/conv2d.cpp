#include "src/nn/conv2d.h"

#include <stdexcept>

#include "src/nn/init.h"
#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding)
    : spec_{.in_channels = in_channels,
            .out_channels = out_channels,
            .kernel = kernel,
            .stride = stride,
            .padding = padding} {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
}

std::int64_t Conv2d::param_count() const {
  std::int64_t k2 = static_cast<std::int64_t>(spec_.kernel) * spec_.kernel;
  return static_cast<std::int64_t>(spec_.out_channels) * spec_.in_channels * k2 +
         spec_.out_channels;
}

std::vector<std::int64_t> Conv2d::param_unit_sizes(bool split_bias) const {
  if (!split_bias) return {param_count()};
  return {param_count() - spec_.out_channels, spec_.out_channels};
}

ModuleCost Conv2d::cost(const CostShapes& shapes) const {
  // im2col + matmul: each output position costs 2 * Cin * K^2 macs per
  // output channel. Output positions come from the probe shape; without
  // one, assume a single position (relative conv-vs-conv costs then track
  // parameter counts, losing only the spatial-shrink factor).
  double positions = 1.0;
  if (shapes.out_shape.size() == 4) {
    positions = static_cast<double>(shapes.out_shape[0]) * shapes.out_shape[2] *
                shapes.out_shape[3];
  }
  double k2cin = static_cast<double>(spec_.kernel) * spec_.kernel * spec_.in_channels;
  double per_position = spec_.out_channels * (2.0 * k2cin + 1.0);
  ModuleCost c;
  c.fwd_flops = positions * per_position;
  // Backward: dx (col2im of dy W) and dW (dy^T cols) each replay the
  // forward matmul volume.
  c.bkwd_flops = 2.0 * positions * per_position;
  double im2col_elems = positions * k2cin;
  c.fwd_bytes =
      4.0 * (static_cast<double>(shapes.in_elems()) + shapes.out_elems() +
             im2col_elems + param_count());
  c.bkwd_bytes = 2.0 * c.fwd_bytes;
  return c;
}

void Conv2d::init_params(std::span<float> w, util::Rng& rng) const {
  int fan_in = spec_.in_channels * spec_.kernel * spec_.kernel;
  auto weight = w.subspan(0, static_cast<std::size_t>(param_count() - spec_.out_channels));
  kaiming_normal(weight, fan_in, rng);
  constant_init(w.subspan(weight.size()), 0.0F);
}

namespace {

/// [B*OH*OW, OC] row-per-position layout -> BCHW.
Tensor rows_to_bchw(const Tensor& rows, int b, int oc, int oh, int ow) {
  Tensor out({b, oc, oh, ow});
  for (int bi = 0; bi < b; ++bi)
    for (int oy = 0; oy < oh; ++oy)
      for (int ox = 0; ox < ow; ++ox) {
        int r = (bi * oh + oy) * ow + ox;
        for (int c = 0; c < oc; ++c) out.at(bi, c, oy, ox) = rows.at(r, c);
      }
  return out;
}

/// BCHW -> [B*OH*OW, OC] row-per-position layout.
Tensor bchw_to_rows(const Tensor& x) {
  int b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor rows({b * h * w, c});
  for (int bi = 0; bi < b; ++bi)
    for (int iy = 0; iy < h; ++iy)
      for (int ix = 0; ix < w; ++ix) {
        int r = (bi * h + iy) * w + ix;
        for (int ci = 0; ci < c; ++ci) rows.at(r, ci) = x.at(bi, ci, iy, ix);
      }
  return rows;
}

}  // namespace

Flow Conv2d::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  const Tensor& x = in.x;
  if (x.rank() != 4) throw std::invalid_argument("Conv2d: BCHW input required");
  int b = x.dim(0), h = x.dim(2), wd = x.dim(3);
  int oh = spec_.out_dim(h), ow = spec_.out_dim(wd);
  std::int64_t wsize = param_count() - spec_.out_channels;
  Tensor cols = tensor::im2col(x, spec_);  // [B*OH*OW, C*K*K]
  Tensor weight({spec_.out_channels, static_cast<int>(wsize) / spec_.out_channels},
                std::vector<float>(w.begin(), w.begin() + wsize));
  Tensor rows = tensor::matmul_nt_bias(
      cols, weight,
      w.subspan(static_cast<std::size_t>(wsize),
                static_cast<std::size_t>(spec_.out_channels)));  // [B*OH*OW, OC]
  cache.saved = {cols, Tensor({4}, {static_cast<float>(b), static_cast<float>(h),
                                    static_cast<float>(wd), 0.0F})};
  Flow out = in;
  out.x = rows_to_bchw(rows, b, spec_.out_channels, oh, ow);
  return out;
}

Flow Conv2d::backward(const Flow& dout, std::span<const float> w_bkwd,
                      const Cache& cache, std::span<float> grad) const {
  const Tensor& cols = cache.saved.at(0);
  const Tensor& dims = cache.saved.at(1);
  int b = static_cast<int>(dims.at(0));
  int h = static_cast<int>(dims.at(1));
  int wd = static_cast<int>(dims.at(2));
  Tensor dy_rows = bchw_to_rows(dout.x);  // [B*OH*OW, OC]
  std::int64_t wsize = param_count() - spec_.out_channels;
  // Parameter gradients from cached forward columns.
  Tensor dw = tensor::matmul_tn(dy_rows, cols);  // [OC, C*K*K]
  for (std::int64_t i = 0; i < dw.size(); ++i) grad[static_cast<std::size_t>(i)] += dw[i];
  tensor::col_sum_accumulate(
      dy_rows, grad.subspan(static_cast<std::size_t>(wsize),
                            static_cast<std::size_t>(spec_.out_channels)));
  // Input gradient via the (possibly different) backward weights.
  Tensor weight({spec_.out_channels, static_cast<int>(wsize) / spec_.out_channels},
                std::vector<float>(w_bkwd.begin(), w_bkwd.begin() + wsize));
  Tensor dcols = tensor::matmul(dy_rows, weight);  // [B*OH*OW, C*K*K]
  Flow din = dout;
  din.x = tensor::col2im(dcols, spec_, b, h, wd);
  return din;
}

}  // namespace pipemare::nn
