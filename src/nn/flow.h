#pragma once

#include "src/tensor/tensor.h"

namespace pipemare::nn {

/// The activation bundle that flows between pipeline stages.
///
/// `x` is the main activation. The auxiliary tensors let a *sequential*
/// module list express the two non-sequential constructs our models need:
///  - `skip`: the open residual shortcut inside a ResNet block or a
///    Transformer sublayer (`ResidualOpen` fills it, `ResidualClose`
///    consumes it). At most one shortcut is open at a time.
///  - `ctx`:  the encoder memory after the encoder/decoder bridge; every
///    decoder cross-attention stage reads it and, in the backward pass,
///    accumulates gradient into the mirrored field.
///  - `aux`:  raw decoder input tokens riding along until the bridge
///    embeds them (integer ids stored as floats; carries no gradient).
///
/// The same struct represents gradients in the backward pass: `x` holds
/// dL/dx, `ctx` holds dL/dctx, `skip` holds dL/dskip.
struct Flow {
  tensor::Tensor x;
  tensor::Tensor ctx;
  tensor::Tensor skip;
  tensor::Tensor aux;

  /// True during training forward passes (set by the execution engines);
  /// stochastic-regularization modules (Dropout) are identity when false.
  bool training = false;

  /// Counter-stream coordinates, stamped by the execution engines at
  /// injection: which microbatch of the minibatch this flow carries and
  /// the optimizer-step index the minibatch belongs to. Stochastic modules
  /// (Dropout) derive their masks as pure functions of (module seed, step,
  /// micro, element), so masks are identical across sequential, threaded
  /// and Hogwild execution regardless of thread timing or draw order.
  int micro = 0;
  std::int64_t step = 0;

  /// Copies the non-tensor bookkeeping (training/micro/step) from another
  /// flow. For modules that build their output Flow from scratch instead
  /// of copying the input (e.g. DecoderBridge).
  void copy_bookkeeping(const Flow& from) {
    training = from.training;
    micro = from.micro;
    step = from.step;
  }
};

}  // namespace pipemare::nn
