#include "src/nn/residual.h"

#include <stdexcept>

#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

ModuleCost ResidualOpen::cost(const CostShapes& shapes) const {
  auto elems = static_cast<double>(shapes.in_elems());
  ModuleCost c;
  c.fwd_bytes = 8.0 * elems;  // one activation copy
  c.bkwd_flops = elems;       // gradient fan-in add
  c.bkwd_bytes = 8.0 * elems;
  return c;
}

Flow ResidualOpen::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w, (void)cache;
  if (!in.skip.empty()) {
    throw std::logic_error("ResidualOpen: a shortcut is already open");
  }
  Flow out = in;
  out.skip = in.x;
  return out;
}

Flow ResidualOpen::backward(const Flow& dout, std::span<const float> w_bkwd,
                            const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd, (void)cache, (void)grad;
  // The forward fan-out (x feeds both the main path and the shortcut)
  // becomes a gradient sum in the backward pass.
  Flow din = dout;
  if (!dout.skip.empty()) {
    din.x = tensor::add(dout.x, dout.skip);
  }
  din.skip = Tensor();
  return din;
}

ResidualClose::ResidualClose() = default;

ResidualClose::ResidualClose(int in_channels, int out_channels, int stride)
    : projection_(std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0)) {}

std::int64_t ResidualClose::param_count() const {
  return projection_ ? projection_->param_count() : 0;
}

std::vector<std::int64_t> ResidualClose::param_unit_sizes(bool split_bias) const {
  return projection_ ? projection_->param_unit_sizes(split_bias)
                     : std::vector<std::int64_t>{};
}

void ResidualClose::init_params(std::span<float> w, util::Rng& rng) const {
  if (projection_) projection_->init_params(w, rng);
}

ModuleCost ResidualClose::cost(const CostShapes& shapes) const {
  auto elems = static_cast<double>(shapes.out_elems());
  ModuleCost c;
  c.fwd_flops = elems;  // skip add
  c.bkwd_flops = elems;
  c.fwd_bytes = 12.0 * elems;
  c.bkwd_bytes = 12.0 * elems;
  if (projection_) {
    // The 1x1 projection convolves the *skip* tensor; its output matches
    // this module's output shape, which is all Conv2d::cost needs.
    CostShapes proj;
    proj.in_shape = shapes.in_shape;
    proj.out_shape = shapes.out_shape;
    ModuleCost p = projection_->cost(proj);
    c.fwd_flops += p.fwd_flops;
    c.bkwd_flops += p.bkwd_flops;
    c.fwd_bytes += p.fwd_bytes;
    c.bkwd_bytes += p.bkwd_bytes;
  }
  return c;
}

Flow ResidualClose::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  if (in.skip.empty()) throw std::logic_error("ResidualClose: no open shortcut");
  Flow out = in;
  if (projection_) {
    Flow skip_in;
    skip_in.x = in.skip;
    Flow projected = projection_->forward(skip_in, w, cache);
    out.x = tensor::add(in.x, projected.x);
  } else {
    out.x = tensor::add(in.x, in.skip);
  }
  out.skip = Tensor();
  return out;
}

Flow ResidualClose::backward(const Flow& dout, std::span<const float> w_bkwd,
                             const Cache& cache, std::span<float> grad) const {
  Flow din = dout;
  if (projection_) {
    Flow dproj;
    dproj.x = dout.x;
    Flow dskip = projection_->backward(dproj, w_bkwd, cache, grad);
    din.skip = dskip.x;
  } else {
    din.skip = dout.x;
  }
  return din;
}

}  // namespace pipemare::nn
