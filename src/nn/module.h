#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/flow.h"
#include "src/util/rng.h"

namespace pipemare::nn {

/// Per-microbatch activation cache a module fills during `forward` and
/// consumes during `backward`. Modules own their slot conventions.
struct Cache {
  std::vector<tensor::Tensor> saved;
  void clear() { saved.clear(); }
};

/// Per-microbatch cost estimate of one module, the currency of the stage
/// partitioner's cost model (PipeDream-style balanced splits). Flops count
/// multiply-adds as two operations; bytes count parameter + activation
/// traffic at float32. Only *relative* magnitudes matter to the
/// partitioner, so rough estimates are fine as long as they are rough in
/// the same way for every layer.
struct ModuleCost {
  double fwd_flops = 0.0;
  double bkwd_flops = 0.0;
  double fwd_bytes = 0.0;
  double bkwd_bytes = 0.0;

  /// The scalar the partitioner balances: one microbatch's round trip
  /// through the module (forward + backward compute).
  double total_flops() const { return fwd_flops + bkwd_flops; }
};

/// Shape context for Module::cost — the activation shapes observed for
/// this module on a probe microbatch. When no probe ran both shapes are
/// empty and modules fall back to a batch-free intrinsic estimate (exact
/// relative costs for fixed-width stacks like MLPs; spatial/sequence
/// scaling is then invisible, which is what the probe fixes).
struct CostShapes {
  std::vector<int> in_shape;
  std::vector<int> out_shape;

  std::int64_t in_elems() const { return elems(in_shape); }
  std::int64_t out_elems() const { return elems(out_shape); }

 private:
  static std::int64_t elems(const std::vector<int>& shape) {
    if (shape.empty()) return 0;
    std::int64_t n = 1;
    for (int d : shape) n *= d;
    return n;
  }
};

/// Dataflow effects of a module on the Flow's auxiliary channels — the
/// graph-lowering hook (src/graph/) reads these to add the non-chain edges
/// a sequential module list implies:
///  - `produces_skip` / `consumes_skip`: the module opens / closes a
///    residual shortcut (`ResidualOpen` fills Flow::skip, `ResidualClose`
///    adds it back into the main path);
///  - `produces_ctx` / `consumes_ctx`: the module publishes / reads the
///    encoder memory channel (`DecoderBridge` moves the encoder output
///    into Flow::ctx; every decoder cross-attention stage reads it).
/// The default (all false) describes a pure chain module: consumes the
/// predecessor's `x`, produces the successor's `x`.
struct FlowEffects {
  bool produces_skip = false;
  bool consumes_skip = false;
  bool produces_ctx = false;
  bool consumes_ctx = false;
};

/// Base class for all layers.
///
/// The central design requirement comes from the paper's asynchronous
/// model (Section 2.1): backpropagation may evaluate the backward pass
/// with *different* weights than the forward pass used
/// (`grad f_t(u_fwd, u_bkwd)`). Therefore:
///  - `forward` receives a parameter view and records whatever activations
///    backward needs into `cache`;
///  - `backward` receives an *independent* parameter view `w_bkwd`
///    (PipeDream passes the stashed forward weights, PipeMare passes the
///    current — possibly T2-corrected — weights) plus the forward cache,
///    and accumulates parameter gradients into `grad`.
///
/// Modules are stateless: all parameters live in externally owned flat
/// vectors, which makes weight versioning, stashing and the T2 buffer
/// trivial for the pipeline engine.
class Module {
 public:
  virtual ~Module() = default;

  virtual std::string name() const = 0;

  /// Total number of parameters (0 for parameter-free layers).
  virtual std::int64_t param_count() const { return 0; }

  /// Sizes of the module's "weight units" — the granularity at which the
  /// paper partitions models into pipeline stages ("treating the weight
  /// and bias in the same layer as a single model weight"). With
  /// `split_bias` the weight matrix and bias become separate units,
  /// doubling the number of stages (the paper's 2x stress test).
  virtual std::vector<std::int64_t> param_unit_sizes(bool split_bias) const {
    (void)split_bias;
    if (param_count() == 0) return {};
    return {param_count()};
  }

  /// Which auxiliary Flow channels the module reads and writes (see
  /// FlowEffects). graph::Graph::lower turns these into skip/ctx edges; a
  /// module that uses a channel without declaring it still *executes*
  /// correctly (executors run the chain order) but its graph dependencies
  /// would be understated, so user modules should override this alongside
  /// forward/backward.
  virtual FlowEffects flow_effects() const { return {}; }

  /// True when `forward` mutates module-owned state, making concurrent
  /// whole-model forward replicas unsafe. No in-tree module is stateful
  /// anymore (Dropout moved to counter-based mask streams), but the gate
  /// stays for user modules; ThreadedHogwildEngine rejects them.
  virtual bool stateful_forward() const { return false; }

  /// Analytic per-microbatch cost estimate (see ModuleCost). The default
  /// charges one flop per input element plus two per parameter; every
  /// in-tree layer overrides it with a FLOP count derived from its actual
  /// kernel. `shapes` comes from a probe forward when available.
  virtual ModuleCost cost(const CostShapes& shapes) const;

  virtual void init_params(std::span<float> w, util::Rng& rng) const { (void)w, (void)rng; }

  virtual Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const = 0;

  virtual Flow backward(const Flow& dout, std::span<const float> w_bkwd,
                        const Cache& cache, std::span<float> grad) const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace pipemare::nn
