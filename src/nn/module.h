#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/flow.h"
#include "src/util/rng.h"

namespace pipemare::nn {

/// Per-microbatch activation cache a module fills during `forward` and
/// consumes during `backward`. Modules own their slot conventions.
struct Cache {
  std::vector<tensor::Tensor> saved;
  void clear() { saved.clear(); }
};

/// Base class for all layers.
///
/// The central design requirement comes from the paper's asynchronous
/// model (Section 2.1): backpropagation may evaluate the backward pass
/// with *different* weights than the forward pass used
/// (`grad f_t(u_fwd, u_bkwd)`). Therefore:
///  - `forward` receives a parameter view and records whatever activations
///    backward needs into `cache`;
///  - `backward` receives an *independent* parameter view `w_bkwd`
///    (PipeDream passes the stashed forward weights, PipeMare passes the
///    current — possibly T2-corrected — weights) plus the forward cache,
///    and accumulates parameter gradients into `grad`.
///
/// Modules are stateless: all parameters live in externally owned flat
/// vectors, which makes weight versioning, stashing and the T2 buffer
/// trivial for the pipeline engine.
class Module {
 public:
  virtual ~Module() = default;

  virtual std::string name() const = 0;

  /// Total number of parameters (0 for parameter-free layers).
  virtual std::int64_t param_count() const { return 0; }

  /// Sizes of the module's "weight units" — the granularity at which the
  /// paper partitions models into pipeline stages ("treating the weight
  /// and bias in the same layer as a single model weight"). With
  /// `split_bias` the weight matrix and bias become separate units,
  /// doubling the number of stages (the paper's 2x stress test).
  virtual std::vector<std::int64_t> param_unit_sizes(bool split_bias) const {
    (void)split_bias;
    if (param_count() == 0) return {};
    return {param_count()};
  }

  /// True when `forward` mutates module-owned state (e.g. Dropout's RNG
  /// stream), making concurrent whole-model forward replicas unsafe.
  /// Stage-partitioned execution (ThreadedEngine) is always safe: each
  /// module's forward runs on exactly one worker there.
  virtual bool stateful_forward() const { return false; }

  virtual void init_params(std::span<float> w, util::Rng& rng) const { (void)w, (void)rng; }

  virtual Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const = 0;

  virtual Flow backward(const Flow& dout, std::span<const float> w_bkwd,
                        const Cache& cache, std::span<float> grad) const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace pipemare::nn
