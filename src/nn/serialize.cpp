#include "src/nn/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pipemare::nn {

namespace {

constexpr char kMagicV0[4] = {'P', 'M', 'W', 'T'};
constexpr char kMagicV1[4] = {'P', 'M', 'W', 'V'};

template <class T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <class T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

std::vector<float> read_payload(std::istream& in, std::uint64_t count,
                                const std::string& what) {
  std::vector<float> weights(count);
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw std::runtime_error("read_weights: truncated payload in " + what);
  return weights;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void write_weights(std::ostream& out, std::span<const float> weights) {
  out.write(kMagicV1, sizeof(kMagicV1));
  write_pod(out, kWeightsFormatVersion);
  const std::uint64_t count = weights.size();
  write_pod(out, count);
  const std::uint64_t checksum =
      fnv1a(weights.data(), weights.size() * sizeof(float));
  write_pod(out, checksum);
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(float)));
}

std::vector<float> read_weights(std::istream& in, const std::string& what) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in) throw std::runtime_error("read_weights: truncated magic in " + what);
  if (std::memcmp(magic, kMagicV0, sizeof(magic)) == 0) {
    // Headerless v0: count + payload, no integrity check (legacy files).
    std::uint64_t count = 0;
    if (!read_pod(in, count)) {
      throw std::runtime_error("read_weights: truncated v0 header in " + what);
    }
    return read_payload(in, count, what);
  }
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) != 0) {
    throw std::runtime_error("read_weights: bad magic in " + what);
  }
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
  if (!read_pod(in, version) || !read_pod(in, count) || !read_pod(in, checksum)) {
    throw std::runtime_error("read_weights: truncated header in " + what);
  }
  if (version == 0 || version > kWeightsFormatVersion) {
    throw std::runtime_error("read_weights: unsupported format version " +
                             std::to_string(version) + " in " + what);
  }
  auto weights = read_payload(in, count, what);
  const std::uint64_t actual = fnv1a(weights.data(), weights.size() * sizeof(float));
  if (actual != checksum) {
    throw std::runtime_error("read_weights: checksum mismatch in " + what +
                             " (file is corrupt)");
  }
  return weights;
}

void save_weights(const std::string& path, std::span<const float> weights) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  write_weights(out, weights);
  if (!out) throw std::runtime_error("save_weights: write failed for " + path);
}

std::vector<float> load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  return read_weights(in, path);
}

}  // namespace pipemare::nn
