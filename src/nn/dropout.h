#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Inverted dropout: during training (Flow::training), zeroes each
/// activation with probability `rate` and scales survivors by 1/(1-rate);
/// identity at evaluation. The paper's Transformer recipes use dropout
/// 0.3 (IWSLT) / 0.1 (WMT), Table 7.
///
/// The mask is sampled from a module-owned deterministic stream (mutable;
/// the engines are single-threaded) and cached for the backward pass, so
/// backward applies exactly the forward mask even under asynchronous
/// weight versions.
class Dropout : public Module {
 public:
  explicit Dropout(double rate, std::uint64_t seed = 0xd50b0457ULL);

  std::string name() const override { return "Dropout"; }
  bool stateful_forward() const override { return true; }
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  double rate_;
  mutable util::Rng rng_;
};

}  // namespace pipemare::nn
