#pragma once

#include "src/nn/module.h"

namespace pipemare::nn {

/// Inverted dropout: during training (Flow::training), zeroes each
/// activation with probability `rate` and scales survivors by 1/(1-rate);
/// identity at evaluation. The paper's Transformer recipes use dropout
/// 0.3 (IWSLT) / 0.1 (WMT), Table 7.
///
/// Masks come from a *counter-based* stream (util::counter_uniform): each
/// mask bit is a pure function of (module seed, optimizer step, microbatch
/// index, element index), with step and micro stamped on the Flow by the
/// execution engines. No mutable RNG state means
///  - forward is thread-safe (stateful_forward() is false), so the
///    whole-model-replica backends (threaded Hogwild) can run dropout
///    models;
///  - masks are independent of draw order, so every engine produces
///    bitwise-identical masks for the same (step, micro);
///  - activation recomputation replays the exact forward mask (the
///    checkpointed Flow carries the same counters).
/// The mask is still cached for the backward pass, which must apply the
/// forward mask even under asynchronous weight versions.
class Dropout : public Module {
 public:
  explicit Dropout(double rate, std::uint64_t seed = 0xd50b0457ULL);

  std::string name() const override { return "Dropout"; }
  ModuleCost cost(const CostShapes& shapes) const override;
  Flow forward(const Flow& in, std::span<const float> w, Cache& cache) const override;
  Flow backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                std::span<float> grad) const override;

 private:
  double rate_;
  std::uint64_t seed_;  ///< stream key; give each instance a distinct seed
};

}  // namespace pipemare::nn
