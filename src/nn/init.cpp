#include "src/nn/init.h"

#include <cmath>

namespace pipemare::nn {

void kaiming_normal(std::span<float> w, int fan_in, util::Rng& rng) {
  double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, std));
}

void xavier_uniform(std::span<float> w, int fan_in, int fan_out, util::Rng& rng) {
  double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : w) v = static_cast<float>(rng.uniform(-a, a));
}

void normal_init(std::span<float> w, double stddev, util::Rng& rng) {
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, stddev));
}

void constant_init(std::span<float> w, float value) {
  for (auto& v : w) v = value;
}

}  // namespace pipemare::nn
