#include "src/nn/linear.h"

#include <stdexcept>

#include "src/nn/init.h"
#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

Linear::Linear(int in_features, int out_features, bool relu_init)
    : in_(in_features), out_(out_features), relu_init_(relu_init) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: positive dimensions required");
  }
}

std::int64_t Linear::param_count() const {
  return static_cast<std::int64_t>(in_) * out_ + out_;
}

std::vector<std::int64_t> Linear::param_unit_sizes(bool split_bias) const {
  if (!split_bias) return {param_count()};
  return {static_cast<std::int64_t>(in_) * out_, out_};
}

ModuleCost Linear::cost(const CostShapes& shapes) const {
  // y = x W^T + b over `rows` input rows (1 when no probe shape is known,
  // which keeps relative costs exact for fixed-row stacks like MLPs).
  double rows = shapes.in_elems() > 0
                    ? static_cast<double>(shapes.in_elems()) / in_
                    : 1.0;
  double wflops = 2.0 * static_cast<double>(in_) * out_;
  ModuleCost c;
  c.fwd_flops = rows * (wflops + out_);
  // Backward: dx (x W) and dW (dy^T x) are each a full matmul, db a sum.
  c.bkwd_flops = rows * (2.0 * wflops + out_);
  c.fwd_bytes = 4.0 * (rows * (in_ + out_) + param_count());
  c.bkwd_bytes = 4.0 * (rows * (in_ + out_) + 2.0 * param_count());
  return c;
}

void Linear::init_params(std::span<float> w, util::Rng& rng) const {
  auto weight = w.subspan(0, static_cast<std::size_t>(in_) * out_);
  auto bias = w.subspan(static_cast<std::size_t>(in_) * out_);
  if (relu_init_) {
    kaiming_normal(weight, in_, rng);
  } else {
    xavier_uniform(weight, in_, out_, rng);
  }
  constant_init(bias, 0.0F);
}

namespace {
Tensor as_rows(const Tensor& t, int features) {
  auto n = static_cast<int>(t.size() / features);
  return t.reshaped({n, features});
}
}  // namespace

Flow Linear::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  Tensor x = as_rows(in.x, in_);
  Tensor weight({out_, in_},
                std::vector<float>(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(in_) * out_));
  Tensor y = tensor::matmul_nt_bias(
      x, weight, w.subspan(static_cast<std::size_t>(in_) * out_, out_));  // [n, out]
  cache.saved = {x};
  Flow out = in;
  std::vector<int> out_shape = in.x.shape();
  out_shape.back() = out_;
  out.x = y.reshaped(std::move(out_shape));
  return out;
}

Flow Linear::backward(const Flow& dout, std::span<const float> w_bkwd,
                      const Cache& cache, std::span<float> grad) const {
  const Tensor& x = cache.saved.at(0);  // [n, in] from the forward pass
  Tensor dy = as_rows(dout.x, out_);
  // Parameter gradients use the *forward* activations (backprop semantics).
  Tensor dw = tensor::matmul_tn(dy, x);  // [out, in]
  for (std::int64_t i = 0; i < dw.size(); ++i) grad[static_cast<std::size_t>(i)] += dw[i];
  tensor::col_sum_accumulate(dy, grad.subspan(static_cast<std::size_t>(in_) * out_, out_));
  // Input gradient uses the *backward* weights (which may differ).
  Tensor weight({out_, in_},
                std::vector<float>(w_bkwd.begin(),
                                   w_bkwd.begin() + static_cast<std::ptrdiff_t>(in_) * out_));
  Tensor dx = tensor::matmul(dy, weight);  // [n, in]
  Flow din = dout;
  std::vector<int> in_shape = dout.x.shape();
  in_shape.back() = in_;
  din.x = dx.reshaped(std::move(in_shape));
  return din;
}

}  // namespace pipemare::nn
