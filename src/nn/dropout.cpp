#include "src/nn/dropout.h"

#include <stdexcept>

#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate in [0, 1) required");
  }
}

Flow Dropout::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w;
  Flow out = in;
  if (!in.training || rate_ == 0.0) {
    cache.saved = {};  // identity: empty cache marks the pass-through path
    return out;
  }
  auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  Tensor mask(in.x.shape());
  out.x = in.x;
  for (std::int64_t i = 0; i < out.x.size(); ++i) {
    bool keep = rng_.uniform() >= rate_;
    mask[i] = keep ? keep_scale : 0.0F;
    out.x[i] *= mask[i];
  }
  cache.saved = {std::move(mask)};
  return out;
}

Flow Dropout::backward(const Flow& dout, std::span<const float> w_bkwd,
                       const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd, (void)grad;
  Flow din = dout;
  if (cache.saved.empty()) return din;  // eval-mode identity
  din.x = tensor::mul(dout.x, cache.saved.at(0));
  return din;
}

}  // namespace pipemare::nn
