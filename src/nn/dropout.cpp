#include "src/nn/dropout.h"

#include <stdexcept>

#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), seed_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate in [0, 1) required");
  }
}

ModuleCost Dropout::cost(const CostShapes& shapes) const {
  // ~10 integer mixing ops per element for the counter hash, plus the
  // multiply; identity (and free) at evaluation, but the partitioner
  // budgets for the training path.
  auto elems = static_cast<double>(shapes.in_elems());
  ModuleCost c;
  c.fwd_flops = 12.0 * elems;
  c.bkwd_flops = elems;
  c.fwd_bytes = 12.0 * elems;
  c.bkwd_bytes = 8.0 * elems;
  return c;
}

Flow Dropout::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w;
  Flow out = in;
  if (!in.training || rate_ == 0.0) {
    cache.saved = {};  // identity: empty cache marks the pass-through path
    return out;
  }
  auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  Tensor mask(in.x.shape());
  out.x = in.x;
  for (std::int64_t i = 0; i < out.x.size(); ++i) {
    bool keep = util::counter_uniform(seed_, static_cast<std::uint64_t>(in.step),
                                      static_cast<std::uint64_t>(in.micro),
                                      static_cast<std::uint64_t>(i)) >= rate_;
    mask[i] = keep ? keep_scale : 0.0F;
    out.x[i] *= mask[i];
  }
  cache.saved = {std::move(mask)};
  return out;
}

Flow Dropout::backward(const Flow& dout, std::span<const float> w_bkwd,
                       const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd, (void)grad;
  Flow din = dout;
  if (cache.saved.empty()) return din;  // eval-mode identity
  din.x = tensor::mul(dout.x, cache.saved.at(0));
  return din;
}

}  // namespace pipemare::nn
