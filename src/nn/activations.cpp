#include "src/nn/activations.h"

#include "src/tensor/conv.h"
#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

namespace {

/// Elementwise / pooling cost: a couple of flops per input element.
ModuleCost elementwise_cost(const CostShapes& shapes, double flops_per_elem) {
  auto elems = static_cast<double>(shapes.in_elems());
  ModuleCost c;
  c.fwd_flops = flops_per_elem * elems;
  c.bkwd_flops = flops_per_elem * elems;
  c.fwd_bytes = 8.0 * elems;
  c.bkwd_bytes = 8.0 * elems;
  return c;
}

}  // namespace

ModuleCost ReLU::cost(const CostShapes& shapes) const {
  return elementwise_cost(shapes, 1.0);
}

ModuleCost MaxPool2x2::cost(const CostShapes& shapes) const {
  return elementwise_cost(shapes, 1.0);
}

ModuleCost GlobalAvgPool::cost(const CostShapes& shapes) const {
  return elementwise_cost(shapes, 1.0);
}

Flow ReLU::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w;
  cache.saved = {in.x};
  Flow out = in;
  out.x = tensor::relu(in.x);
  return out;
}

Flow ReLU::backward(const Flow& dout, std::span<const float> w_bkwd, const Cache& cache,
                    std::span<float> grad) const {
  (void)w_bkwd, (void)grad;
  Flow din = dout;
  din.x = tensor::relu_backward(dout.x, cache.saved.at(0));
  return din;
}

Flow MaxPool2x2::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w;
  Tensor indices;
  Flow out = in;
  out.x = tensor::maxpool2x2(in.x, indices);
  Tensor shape({4}, {static_cast<float>(in.x.dim(0)), static_cast<float>(in.x.dim(1)),
                     static_cast<float>(in.x.dim(2)), static_cast<float>(in.x.dim(3))});
  cache.saved = {indices, shape};
  return out;
}

Flow MaxPool2x2::backward(const Flow& dout, std::span<const float> w_bkwd,
                          const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd, (void)grad;
  const Tensor& indices = cache.saved.at(0);
  const Tensor& shape = cache.saved.at(1);
  std::vector<int> in_shape = {static_cast<int>(shape.at(0)), static_cast<int>(shape.at(1)),
                               static_cast<int>(shape.at(2)), static_cast<int>(shape.at(3))};
  Flow din = dout;
  din.x = tensor::maxpool2x2_backward(dout.x, indices, in_shape);
  return din;
}

Flow GlobalAvgPool::forward(const Flow& in, std::span<const float> w, Cache& cache) const {
  (void)w;
  Tensor shape({4}, {static_cast<float>(in.x.dim(0)), static_cast<float>(in.x.dim(1)),
                     static_cast<float>(in.x.dim(2)), static_cast<float>(in.x.dim(3))});
  cache.saved = {shape};
  Flow out = in;
  out.x = tensor::global_avg_pool(in.x);
  return out;
}

Flow GlobalAvgPool::backward(const Flow& dout, std::span<const float> w_bkwd,
                             const Cache& cache, std::span<float> grad) const {
  (void)w_bkwd, (void)grad;
  const Tensor& shape = cache.saved.at(0);
  std::vector<int> in_shape = {static_cast<int>(shape.at(0)), static_cast<int>(shape.at(1)),
                               static_cast<int>(shape.at(2)), static_cast<int>(shape.at(3))};
  Flow din = dout;
  din.x = tensor::global_avg_pool_backward(dout.x, in_shape);
  return din;
}

}  // namespace pipemare::nn
