#include "src/nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "src/nn/init.h"
#include "src/tensor/ops.h"

namespace pipemare::nn {

using tensor::Tensor;

namespace {

/// Projects rows[n, D] with one of the four packed [D,D]+[D] projections.
Tensor project(const Tensor& rows, std::span<const float> w, int d, int which) {
  std::size_t unit = static_cast<std::size_t>(d) * d + d;
  auto base = w.subspan(unit * static_cast<std::size_t>(which));
  Tensor weight({d, d}, std::vector<float>(base.begin(),
                                           base.begin() + static_cast<std::ptrdiff_t>(d) * d));
  Tensor y = tensor::matmul_nt_bias(
      rows, weight,
      base.subspan(static_cast<std::size_t>(d) * d, static_cast<std::size_t>(d)));
  return y;
}

/// Backward of `project`: accumulates dW/db into grad and returns d(rows)
/// computed with the supplied (possibly different) backward weights.
Tensor project_backward(const Tensor& drows_out, const Tensor& rows_in,
                        std::span<const float> w_bkwd, std::span<float> grad, int d,
                        int which) {
  std::size_t unit = static_cast<std::size_t>(d) * d + d;
  auto gbase = grad.subspan(unit * static_cast<std::size_t>(which));
  Tensor dw = tensor::matmul_tn(drows_out, rows_in);  // [D, D]
  for (std::int64_t i = 0; i < dw.size(); ++i) gbase[static_cast<std::size_t>(i)] += dw[i];
  tensor::col_sum_accumulate(
      drows_out, gbase.subspan(static_cast<std::size_t>(d) * d, static_cast<std::size_t>(d)));
  auto wbase = w_bkwd.subspan(unit * static_cast<std::size_t>(which));
  Tensor weight({d, d}, std::vector<float>(wbase.begin(),
                                           wbase.begin() + static_cast<std::ptrdiff_t>(d) * d));
  return tensor::matmul(drows_out, weight);
}

/// Extracts head h of row-major [B*S, D] into [S, Dh] for batch b.
Tensor head_slice(const Tensor& rows, int b, int s, int dh, int h) {
  Tensor out({s, dh});
  for (int i = 0; i < s; ++i)
    for (int j = 0; j < dh; ++j) out.at(i, j) = rows.at(b * s + i, h * dh + j);
  return out;
}

void head_accumulate(Tensor& rows, const Tensor& slice, int b, int s, int dh, int h) {
  for (int i = 0; i < s; ++i)
    for (int j = 0; j < dh; ++j) rows.at(b * s + i, h * dh + j) += slice.at(i, j);
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(int d_model, int num_heads, Kind kind)
    : d_model_(d_model), heads_(num_heads), kind_(kind) {
  if (d_model <= 0 || num_heads <= 0 || d_model % num_heads != 0) {
    throw std::invalid_argument("MultiHeadAttention: d_model divisible by heads required");
  }
}

std::string MultiHeadAttention::name() const {
  switch (kind_) {
    case Kind::SelfAttention: return "SelfAttention";
    case Kind::CausalSelfAttention: return "CausalSelfAttention";
    case Kind::CrossAttention: return "CrossAttention";
  }
  return "MultiHeadAttention";
}

std::int64_t MultiHeadAttention::param_count() const {
  return 4 * (static_cast<std::int64_t>(d_model_) * d_model_ + d_model_);
}

std::vector<std::int64_t> MultiHeadAttention::param_unit_sizes(bool split_bias) const {
  std::int64_t mat = static_cast<std::int64_t>(d_model_) * d_model_;
  if (!split_bias) return {mat + d_model_, mat + d_model_, mat + d_model_, mat + d_model_};
  return {mat, d_model_, mat, d_model_, mat, d_model_, mat, d_model_};
}

ModuleCost MultiHeadAttention::cost(const CostShapes& shapes) const {
  // Four D x D projections over rows = B*S tokens, plus the two
  // S-dependent score matmuls (Q K^T and A V) and the row softmax. The
  // probe shape [B, S, D] supplies rows and S; without it assume one
  // token, which keeps the (dominant) projection costs comparable.
  double rows = 1.0;
  double seq = 1.0;
  if (shapes.in_shape.size() == 3) {
    rows = static_cast<double>(shapes.in_shape[0]) * shapes.in_shape[1];
    seq = shapes.in_shape[1];
  }
  double d = d_model_;
  double proj = 4.0 * rows * (2.0 * d * d + d);
  double scores = 4.0 * rows * seq * d;  // QK^T + AV, 2 flops per mac
  double softmax = 5.0 * rows * seq;
  ModuleCost c;
  c.fwd_flops = proj + scores + softmax;
  c.bkwd_flops = 2.0 * c.fwd_flops;
  c.fwd_bytes = 4.0 * (7.0 * rows * d + rows * seq * heads_ + param_count());
  c.bkwd_bytes = 2.0 * c.fwd_bytes;
  return c;
}

void MultiHeadAttention::init_params(std::span<float> w, util::Rng& rng) const {
  std::size_t unit = static_cast<std::size_t>(d_model_) * d_model_ + d_model_;
  for (int p = 0; p < 4; ++p) {
    auto base = w.subspan(unit * static_cast<std::size_t>(p), unit);
    xavier_uniform(base.subspan(0, static_cast<std::size_t>(d_model_) * d_model_), d_model_,
                   d_model_, rng);
    constant_init(base.subspan(static_cast<std::size_t>(d_model_) * d_model_), 0.0F);
  }
}

Flow MultiHeadAttention::forward(const Flow& in, std::span<const float> w,
                                 Cache& cache) const {
  const Tensor& x = in.x;
  if (x.rank() != 3 || x.dim(2) != d_model_) {
    throw std::invalid_argument("MultiHeadAttention: [B,S,D] input required");
  }
  int b = x.dim(0), s = x.dim(1);
  bool cross = kind_ == Kind::CrossAttention;
  const Tensor& kv_src = cross ? in.ctx : in.x;
  if (cross && (kv_src.rank() != 3 || kv_src.dim(2) != d_model_)) {
    throw std::invalid_argument("CrossAttention: encoder memory missing from ctx");
  }
  int sk = cross ? kv_src.dim(1) : s;
  int dh = d_model_ / heads_;
  float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(dh));

  Tensor x_rows = x.reshaped({b * s, d_model_});
  Tensor z_rows = kv_src.reshaped({b * sk, d_model_});
  Tensor q = project(x_rows, w, d_model_, 0);
  Tensor k = project(z_rows, w, d_model_, 1);
  Tensor v = project(z_rows, w, d_model_, 2);

  Tensor probs({b, heads_, s, sk});
  Tensor att({b * s, d_model_});
  for (int bi = 0; bi < b; ++bi) {
    for (int h = 0; h < heads_; ++h) {
      Tensor qh = head_slice(q, bi, s, dh, h);
      Tensor kh = head_slice(k, bi, sk, dh, h);
      Tensor vh = head_slice(v, bi, sk, dh, h);
      Tensor scores = tensor::matmul_nt(qh, kh);  // [s, sk]
      for (int i = 0; i < s; ++i) {
        for (int j = 0; j < sk; ++j) {
          scores.at(i, j) *= inv_sqrt;
          if (kind_ == Kind::CausalSelfAttention && j > i) scores.at(i, j) = -1e9F;
        }
      }
      Tensor p = tensor::softmax_rows(scores);
      for (int i = 0; i < s; ++i)
        for (int j = 0; j < sk; ++j) probs.at(bi, h, i, j) = p.at(i, j);
      Tensor oh = tensor::matmul(p, vh);  // [s, dh]
      head_accumulate(att, oh, bi, s, dh, h);
    }
  }
  Tensor y = project(att, w, d_model_, 3);
  cache.saved = {x_rows, z_rows, q, k, v, probs, att};
  Flow out = in;
  out.x = y.reshaped({b, s, d_model_});
  return out;
}

Flow MultiHeadAttention::backward(const Flow& dout, std::span<const float> w_bkwd,
                                  const Cache& cache, std::span<float> grad) const {
  const Tensor& x_rows = cache.saved.at(0);
  const Tensor& z_rows = cache.saved.at(1);
  const Tensor& q = cache.saved.at(2);
  const Tensor& k = cache.saved.at(3);
  const Tensor& v = cache.saved.at(4);
  const Tensor& probs = cache.saved.at(5);
  const Tensor& att = cache.saved.at(6);

  int b = probs.dim(0), s = probs.dim(2), sk = probs.dim(3);
  int dh = d_model_ / heads_;
  float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(dh));
  bool cross = kind_ == Kind::CrossAttention;

  Tensor dy_rows = dout.x.reshaped({b * s, d_model_});
  Tensor datt = project_backward(dy_rows, att, w_bkwd, grad, d_model_, 3);

  Tensor dq({b * s, d_model_});
  Tensor dk({b * sk, d_model_});
  Tensor dv({b * sk, d_model_});
  for (int bi = 0; bi < b; ++bi) {
    for (int h = 0; h < heads_; ++h) {
      Tensor doh = head_slice(datt, bi, s, dh, h);
      Tensor qh = head_slice(q, bi, s, dh, h);
      Tensor kh = head_slice(k, bi, sk, dh, h);
      Tensor vh = head_slice(v, bi, sk, dh, h);
      Tensor p({s, sk});
      for (int i = 0; i < s; ++i)
        for (int j = 0; j < sk; ++j) p.at(i, j) = probs.at(bi, h, i, j);
      Tensor dp = tensor::matmul_nt(doh, vh);  // [s, sk]
      Tensor dvh = tensor::matmul_tn(p, doh);  // [sk, dh]
      // Softmax backward per row: ds = p * (dp - sum_j dp*p).
      Tensor ds({s, sk});
      for (int i = 0; i < s; ++i) {
        float dot = 0.0F;
        for (int j = 0; j < sk; ++j) dot += dp.at(i, j) * p.at(i, j);
        for (int j = 0; j < sk; ++j) {
          ds.at(i, j) = p.at(i, j) * (dp.at(i, j) - dot) * inv_sqrt;
        }
      }
      Tensor dqh = tensor::matmul(ds, kh);     // [s, dh]
      Tensor dkh = tensor::matmul_tn(ds, qh);  // [sk, dh]
      head_accumulate(dq, dqh, bi, s, dh, h);
      head_accumulate(dk, dkh, bi, sk, dh, h);
      head_accumulate(dv, dvh, bi, sk, dh, h);
    }
  }

  Tensor dx_rows = project_backward(dq, x_rows, w_bkwd, grad, d_model_, 0);
  Tensor dz_rows = project_backward(dk, z_rows, w_bkwd, grad, d_model_, 1);
  tensor::add_inplace(dz_rows, project_backward(dv, z_rows, w_bkwd, grad, d_model_, 2));

  Flow din = dout;
  if (cross) {
    din.x = dx_rows.reshaped({b, s, d_model_});
    Tensor dctx = dz_rows.reshaped({b, sk, d_model_});
    if (dout.ctx.empty()) {
      din.ctx = std::move(dctx);
    } else {
      din.ctx = tensor::add(dout.ctx, dctx);
    }
  } else {
    tensor::add_inplace(dx_rows, dz_rows);
    din.x = dx_rows.reshaped({b, s, d_model_});
  }
  return din;
}

}  // namespace pipemare::nn
