#pragma once

#include "src/nn/model.h"

namespace pipemare::nn {

/// Configuration of the CIFAR-style residual CNN used as the paper's
/// ResNet50/ResNet152 analog. Groups double the channel count and halve
/// the spatial resolution (stride-2 first block), exactly the classic
/// layout, scaled to synthetic 16x16 images.
struct ResNetConfig {
  int in_channels = 3;
  int base_channels = 8;
  std::vector<int> blocks_per_group = {1, 1, 1};
  int num_classes = 10;

  /// Replace BatchNorm with GroupNorm (Wu & He), which the paper cites as
  /// the remedy when microbatches get too small for batch statistics —
  /// with GroupNorm the image tasks can run microbatch 1, minimizing the
  /// pipeline delay (2(P-i)+1)/N. See bench/ablation_norm_microbatch.
  bool group_norm = false;
  int gn_groups = 2;

  /// Deeper preset standing in for ResNet152 in Figure 11 (more blocks =>
  /// more weight units => more pipeline stages at unit granularity).
  static ResNetConfig deep();
};

/// Builds the sequential module list:
/// stem conv/BN/ReLU; residual groups (each block decomposed into
/// ResidualOpen, Conv, BN, ReLU, Conv, BN, ResidualClose, ReLU so the stage
/// partitioner can cut inside blocks); global average pool; linear head.
Model make_resnet(const ResNetConfig& cfg);

}  // namespace pipemare::nn
