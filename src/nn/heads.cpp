#include "src/nn/heads.h"

#include <cmath>
#include <stdexcept>

#include "src/tensor/ops.h"
#include "src/util/stats.h"

namespace pipemare::nn {

using tensor::Tensor;

LossResult ClassificationXent::forward_backward(const Tensor& output,
                                                const Tensor& target) const {
  if (output.rank() != 2) throw std::invalid_argument("ClassificationXent: [B,K] required");
  int b = output.dim(0), k = output.dim(1);
  if (target.size() != b) throw std::invalid_argument("ClassificationXent: target size");
  Tensor logp = tensor::log_softmax_rows(output);
  LossResult res;
  res.doutput = Tensor({b, k});
  double inv_b = 1.0 / b;
  for (int i = 0; i < b; ++i) {
    int y = static_cast<int>(target[i]);
    if (y < 0 || y >= k) throw std::out_of_range("ClassificationXent: label out of range");
    res.loss -= logp.at(i, y) * inv_b;
    int pred = 0;
    float best = logp.at(i, 0);
    for (int j = 1; j < k; ++j) {
      if (logp.at(i, j) > best) {
        best = logp.at(i, j);
        pred = j;
      }
    }
    if (pred == y) res.correct += 1.0;
    for (int j = 0; j < k; ++j) {
      float p = std::exp(logp.at(i, j));
      res.doutput.at(i, j) = static_cast<float>((p - (j == y ? 1.0F : 0.0F)) * inv_b);
    }
  }
  res.count = b;
  return res;
}

SequenceXent::SequenceXent(double label_smoothing, int pad_id)
    : smoothing_(label_smoothing), pad_id_(pad_id) {
  if (label_smoothing < 0.0 || label_smoothing >= 1.0) {
    throw std::invalid_argument("SequenceXent: smoothing in [0,1) required");
  }
}

LossResult SequenceXent::forward_backward(const Tensor& output, const Tensor& target) const {
  if (output.rank() != 3) throw std::invalid_argument("SequenceXent: [B,S,V] required");
  int b = output.dim(0), s = output.dim(1), v = output.dim(2);
  if (target.size() != static_cast<std::int64_t>(b) * s) {
    throw std::invalid_argument("SequenceXent: target size mismatch");
  }
  Tensor logits2d = output.reshaped({b * s, v});
  Tensor logp = tensor::log_softmax_rows(logits2d);
  LossResult res;
  res.doutput = Tensor(output.shape());
  Tensor dflat = res.doutput.reshaped({b * s, v});
  int active = 0;
  for (int r = 0; r < b * s; ++r) {
    int y = static_cast<int>(target[r]);
    if (y == pad_id_) continue;
    ++active;
  }
  if (active == 0) return res;
  double inv_n = 1.0 / active;
  // Smoothed target: (1 - eps) on the gold token plus eps/V spread uniformly.
  double on_gold = 1.0 - smoothing_;
  double uniform = smoothing_ / v;
  for (int r = 0; r < b * s; ++r) {
    int y = static_cast<int>(target[r]);
    if (y == pad_id_) continue;
    if (y < 0 || y >= v) throw std::out_of_range("SequenceXent: token out of range");
    int pred = 0;
    float best = logp.at(r, 0);
    double row_loss = 0.0;
    for (int j = 0; j < v; ++j) {
      double t = uniform + (j == y ? on_gold : 0.0);
      row_loss -= t * logp.at(r, j);
      if (logp.at(r, j) > best) {
        best = logp.at(r, j);
        pred = j;
      }
      float p = std::exp(logp.at(r, j));
      dflat.at(r, j) = static_cast<float>((p - t) * inv_n);
    }
    res.loss += row_loss * inv_n;
    if (pred == y) res.correct += 1.0;
  }
  res.count = active;
  res.doutput = dflat.reshaped({b, s, v});
  return res;
}

LossResult MseLoss::forward_backward(const Tensor& output, const Tensor& target) const {
  if (output.size() != target.size()) throw std::invalid_argument("MseLoss: size mismatch");
  auto n = static_cast<double>(output.size());
  LossResult res;
  res.doutput = Tensor(output.shape());
  for (std::int64_t i = 0; i < output.size(); ++i) {
    double d = static_cast<double>(output[i]) - target[i];
    res.loss += 0.5 * d * d / n;
    res.doutput[i] = static_cast<float>(d / n);
  }
  res.correct = -res.loss;
  res.count = n;
  return res;
}

}  // namespace pipemare::nn
